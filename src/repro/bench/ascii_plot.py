"""Terminal log-log plots for the scalability figures.

The paper's Figure 8 is a log-log chart; :func:`loglog_plot` renders the
same series as a character grid so the benchmark output shows the
*slopes* — the quantity the reproduction argues about — at a glance.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["loglog_plot"]

_MARKERS = "RDNabcdefg"  # first letters per series, in insertion order


def loglog_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    x_label: str = "trace size",
    y_label: str = "seconds",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a log-log ASCII chart.

    Points with non-positive coordinates are skipped (log undefined).
    Series markers are the series' first letters (disambiguated from
    ``_MARKERS`` on collision).
    """
    points: list[tuple[float, float, str]] = []
    markers: dict[str, str] = {}
    used: set[str] = set()
    for index, (name, values) in enumerate(series.items()):
        marker = name[:1].upper() or _MARKERS[index % len(_MARKERS)]
        if marker in used:
            marker = _MARKERS[index % len(_MARKERS)]
        used.add(marker)
        markers[name] = marker
        for x, y in values:
            if x > 0 and y > 0:
                points.append((math.log10(x), math.log10(y), marker))
    if not points:
        return "(no positive data points)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    # Degenerate axes (all points share an x or a y) would divide by a
    # zero span; substitute a unit span so the points land on one
    # column/row instead of raising.
    x_span = x_hi - x_lo
    if x_span <= 0:
        x_span = 1.0
    y_span = y_hi - y_lo
    if y_span <= 0:
        y_span = 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = round((x - x_lo) / x_span * (width - 1))
        row = (height - 1) - round((y - y_lo) / y_span * (height - 1))
        grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{10 ** y_hi:8.2g} |"
        elif row_index == height - 1:
            label = f"{10 ** y_lo:8.2g} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(
        f"          {10 ** x_lo:<10.3g}{x_label:^{max(0, width - 20)}}{10 ** x_hi:>10.3g}"
    )
    legend = "   ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(f"          [{y_label} vs {x_label}, log-log]  {legend}")
    return "\n".join(lines)
