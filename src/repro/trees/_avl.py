"""Shared AVL machinery for the augmented trees.

:class:`~repro.core.rpai.RPAITree` (parent-relative keys, Section 3.2)
and :class:`~repro.trees.treemap.TreeMap` (absolute keys, Section 3.1)
balance identically — same height bookkeeping, same single/double
rotation cases — and differ only in what a rotation must do to the
*keys* of the moved nodes.  This module holds that logic once:

* :func:`height` — the null-safe AVL height accessor;
* :func:`make_avl_ops` — a factory that specializes ``rotate_left`` /
  ``rotate_right`` / ``rebalance`` closures for one node family, given
  its ``update`` function (recompute derived fields from children) and
  whether its keys are parent-relative.

Specializing via closures (rather than flags checked per call) keeps
the per-rotation cost identical to the previously duplicated
hand-written versions; both tree modules bind the returned functions at
import time.

The node classes themselves stay per-module (their ``__slots__``
differ: RPAI nodes carry ``min_off``/``max_off``), but every node
family used here must expose ``key``, ``height``, ``left`` and
``right`` attributes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs import SINK as _SINK

__all__ = ["height", "make_avl_ops"]


def height(node: Any) -> int:
    """AVL height of ``node`` (0 for None, leaves are 1)."""
    return node.height if node is not None else 0


def make_avl_ops(
    update: Callable[[Any], None],
    *,
    relative: bool,
    rotation_counter: str,
) -> tuple[Callable, Callable, Callable]:
    """Build ``(rotate_left, rotate_right, rebalance)`` for one tree type.

    Args:
        update: recompute a node's derived fields (height, subtree sum,
            offsets) from its children; children must be up to date.
        relative: True for parent-relative keys (RPAI trees) — rotations
            then re-express every moved node's key in its *new* parent's
            frame (see docs/rpai_internals.md for the derivation); False
            for absolute keys (TreeMap), where rotations move pointers
            only.
        rotation_counter: :mod:`repro.obs` counter incremented per
            rotation (e.g. ``"rpai.rotations"``).

    Returns:
        The three closures.  ``rebalance`` performs the standard AVL
        single-step repair (children's heights differ from the node's
        cached height by at most one more than allowed) and refreshes
        the node's derived fields; it returns the possibly-new subtree
        root, which the caller must reattach.
    """
    if relative:

        def rotate_left(h: Any) -> Any:
            if _SINK.enabled:
                _SINK.inc(rotation_counter)
            x = h.right
            xk = x.key
            h.right = x.left
            if h.right is not None:
                h.right.key += xk
            x.key += h.key
            h.key = -xk
            x.left = h
            update(h)
            update(x)
            return x

        def rotate_right(h: Any) -> Any:
            if _SINK.enabled:
                _SINK.inc(rotation_counter)
            x = h.left
            xk = x.key
            h.left = x.right
            if h.left is not None:
                h.left.key += xk
            x.key += h.key
            h.key = -xk
            x.right = h
            update(h)
            update(x)
            return x

    else:

        def rotate_left(h: Any) -> Any:
            if _SINK.enabled:
                _SINK.inc(rotation_counter)
            x = h.right
            h.right = x.left
            x.left = h
            update(h)
            update(x)
            return x

        def rotate_right(h: Any) -> Any:
            if _SINK.enabled:
                _SINK.inc(rotation_counter)
            x = h.left
            h.left = x.right
            x.right = h
            update(h)
            update(x)
            return x

    def rebalance(node: Any) -> Any:
        update(node)
        left, right = node.left, node.right
        balance = (left.height if left is not None else 0) - (
            right.height if right is not None else 0
        )
        if balance > 1:
            if height(left.left) < height(left.right):
                node.left = rotate_left(left)
            return rotate_right(node)
        if balance < -1:
            if height(right.right) < height(right.left):
                node.right = rotate_right(right)
            return rotate_left(node)
        return node

    return rotate_left, rotate_right, rebalance
