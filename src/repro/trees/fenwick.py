"""Fenwick tree (Binary Indexed Tree) over a dense integer key universe.

Historically this module was only a related-work comparator (paper
Section 6): Fenwick trees [Fenwick 1994] answer prefix-sum queries in
O(log U) over a universe of keys ``0..capacity-1`` but have **no
support for shifting key ranges** — moving the keys of all entries
above a pivot requires rebuilding, which is exactly the gap RPAI trees
fill.  The ablation benchmark (``benchmarks/bench_rpai_ops.py``)
quantifies this.

It is now also a real index backend: for dense-integer-key roles that
never call ``shift_keys`` (equality-θ aggregate indexes, PAI-map-style
bound maps), a flat-array BIT beats a pointer-chasing tree on every
constant factor — no node allocations, no rotations, O(log U) loops
over a list.  :class:`~repro.core.adaptive.AdaptiveIndex` selects it
for those roles and migrates to an RPAI tree the first time a
non-dense key or a ``shift_keys`` shows up.  To serve as a backend it
implements the full :class:`~repro.core.interfaces.AggregateIndex`
protocol with prune-zeros semantics (a zero value *is* absence — the
only mode the engines use), grows its universe by doubling, and
supports the order/search helpers the engines probe
(``first_key_with_prefix_above`` runs in O(log U) via binary lifting;
``successor``/``predecessor``/``min_key``/``max_key`` are O(U) scans,
acceptable because no hot path uses them on this backend).

The BIT itself is maintained **lazily**: ``add`` updates the point-value
array (O(1)) and appends the delta to a pending queue; prefix-sum reads
drain the queue first — incrementally (O(p log U)) when it is short, by
a full O(U) rebuild when ``p log U`` would exceed that.  Point reads,
iteration, ``len`` and ``total_sum`` (a maintained scalar) never touch
the BIT, so a role that only ever does point updates and point probes —
the equality-θ aggregate index with an ``=`` outer comparison — runs at
flat-array speed and pays for prefix machinery it doesn't use exactly
never.  Interleaved add/get_sum traffic drains one or two deltas per
read, the same O(log U) work eager maintenance would have done.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["FenwickTree"]


class FenwickTree:
    """Classic BIT storing point values with prefix-sum queries.

    Args:
        capacity: initial size of the key universe; valid keys are
            ``0 <= key < capacity``.  :meth:`grow` extends it.
        prune_zeros: accepted for :class:`AggregateIndex` parity.  A
            Fenwick tree cannot represent an explicit zero-valued entry
            distinctly from an absent key, so zero always means absent
            regardless of this flag; the adaptive selector only picks
            this backend for prune-zeros roles, where the semantics
            coincide.
    """

    __slots__ = ("_tree", "_values", "_pending", "_total", "_nnz", "capacity", "prune_zeros")

    def __init__(self, capacity: int = 1024, *, prune_zeros: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.prune_zeros = prune_zeros
        self._tree = [0.0] * (capacity + 1)
        self._values = [0.0] * capacity  # point values, for get/rebuild
        self._pending: list[tuple[int, float]] = []  # deltas not yet in _tree
        self._total = 0.0  # maintained scalar: sum of all values
        self._nnz = 0  # number of non-zero entries, for O(1) len()

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[int, float]],
        *,
        prune_zeros: bool = False,
        capacity: int | None = None,
    ) -> "FenwickTree":
        """Build from key-sorted ``(key, value)`` pairs in O(n + U).

        The BIT array is constructed with the linear-time parent
        propagation pass instead of n O(log U) ``add`` calls.

        Raises:
            ValueError: when keys are not strictly increasing integers
                in ``[0, capacity)``.
        """
        items = [(k, v) for k, v in sorted_items if v != 0]
        if capacity is None:
            capacity = max(1024, items[-1][0] + 1 if items else 0)
        tree = cls(capacity, prune_zeros=prune_zeros)
        last = -1
        for key, value in items:
            if not isinstance(key, int) or not 0 <= key < capacity:
                raise ValueError(f"bulk_load key {key!r} outside universe [0, {capacity})")
            if key <= last:
                raise ValueError("bulk_load requires strictly increasing keys")
            last = key
            tree._values[key] = value
        tree._nnz = len(items)
        tree._total = sum(v for _, v in items)
        tree._rebuild_tree()
        return tree

    def _rebuild_tree(self) -> None:
        """O(U) BIT construction from ``_values`` (supersedes and drops
        any pending deltas — they are already in ``_values``)."""
        self._pending.clear()
        tree = self._tree
        for i in range(1, self.capacity + 1):
            tree[i] = self._values[i - 1]
        for i in range(1, self.capacity + 1):
            j = i + (i & (-i))
            if j <= self.capacity:
                tree[j] += tree[i]

    def _flush(self) -> None:
        """Fold the pending deltas into the BIT before a prefix read.

        Short queues drain incrementally (O(p log U)); long ones — a
        point-update burst with no intervening prefix reads — amortize
        into one O(U) rebuild.
        """
        pending = self._pending
        if not pending:
            return
        capacity = self.capacity
        if len(pending) * capacity.bit_length() >= capacity:
            self._rebuild_tree()
            return
        tree = self._tree
        for key, delta in pending:
            i = key + 1
            while i <= capacity:
                tree[i] += delta
                i += i & (-i)
        pending.clear()

    def grow(self, min_capacity: int) -> None:
        """Extend the key universe to at least ``min_capacity`` by
        doubling, rebuilding the BIT in O(new capacity).  Amortized O(1)
        per insert when driven by the adaptive backend."""
        capacity = self.capacity
        while capacity < min_capacity:
            capacity *= 2
        if capacity == self.capacity:
            return
        self._values.extend([0.0] * (capacity - self.capacity))
        self._tree = [0.0] * (capacity + 1)
        self.capacity = capacity
        self._rebuild_tree()  # rebuild from _values; drops pending too

    # -- basic map operations -------------------------------------------------

    def add(self, key: int, delta: float) -> None:
        """Add ``delta`` to the value at ``key``.

        O(1): the point array and the scalar total update immediately;
        the BIT delta is queued and folded in by the next prefix read
        (see :meth:`_flush`).
        """
        if not 0 <= key < self.capacity:
            raise IndexError(f"key {key} outside universe [0, {self.capacity})")
        values = self._values
        old = values[key]
        new = old + delta
        values[key] = new
        if old == 0:
            if new != 0:
                self._nnz += 1
        elif new == 0:
            self._nnz -= 1
        self._total += delta
        pending = self._pending
        pending.append((key, delta))
        if len(pending) >= self.capacity:
            # Bound queue memory at O(U) for prefix-free workloads; one
            # O(U) rebuild per U appends keeps add amortized O(1).
            self._rebuild_tree()

    def get(self, key: int, default: float = 0.0) -> float:
        if not 0 <= key < self.capacity:
            return default
        value = self._values[key]
        return value if value != 0 else default

    def put(self, key: int, value: float) -> None:
        self.add(key, value - self._values[key] if 0 <= key < self.capacity else value)

    def delete(self, key: int) -> float:
        """Remove ``key`` (zero its value) and return the old value.

        Raises:
            KeyError: if no non-zero value is stored at ``key``.
        """
        if not 0 <= key < self.capacity or self._values[key] == 0:
            raise KeyError(key)
        value = self._values[key]
        self.add(key, -value)
        return value

    def pop(self, key: int, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: int, *, inclusive: bool = True) -> float:
        """Sum of values with keys ``<= key`` (``< key`` if exclusive);
        O(log capacity) plus draining any queued point updates."""
        if self._pending:
            self._flush()
        upper = key if inclusive else key - 1
        upper = min(upper, self.capacity - 1)
        total = 0.0
        tree = self._tree
        i = upper + 1
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def total_sum(self) -> float:
        """Sum of all values — a maintained scalar, O(1)."""
        return self._total

    def suffix_sum(self, key: int, *, inclusive: bool = False) -> float:
        """Sum of values over entries with key ``> key`` (``>= key``)."""
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: int, delta: int, *, inclusive: bool = False) -> None:
        """O(capacity): Fenwick trees cannot shift keys structurally, so
        this literally rebuilds — included to make the comparison in the
        ablation benchmark honest.  (The adaptive backend migrates to an
        RPAI tree *before* ever calling this.)"""
        start = key if inclusive else key + 1
        moved: dict[int, float] = {}
        for k in range(max(start, 0), self.capacity):
            if self._values[k] != 0:
                moved[k] = self._values[k]
        for k, v in moved.items():
            self.add(k, -v)
        for k, v in moved.items():
            nk = k + delta
            if not 0 <= nk < self.capacity:
                raise IndexError(f"shift moved key {k} outside the universe")
            self.add(nk, v)

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> int:
        """Smallest live key; raises KeyError when empty.  O(U)."""
        if self._nnz:
            for k, v in enumerate(self._values):
                if v != 0:
                    return k
        raise KeyError("empty index")

    def max_key(self) -> int:
        """Largest live key; raises KeyError when empty.  O(U)."""
        if self._nnz:
            for k in range(self.capacity - 1, -1, -1):
                if self._values[k] != 0:
                    return k
        raise KeyError("empty index")

    def successor(self, key: float) -> int | None:
        """Smallest live key strictly greater than ``key``.  O(U)."""
        values = self._values
        for k in range(max(int(key) + 1 if key >= 0 else 0, 0), self.capacity):
            if values[k] != 0 and k > key:
                return k
        return None

    def predecessor(self, key: float) -> int | None:
        """Largest live key strictly smaller than ``key``.  O(U)."""
        values = self._values
        for k in range(min(int(key), self.capacity - 1), -1, -1):
            if values[k] != 0 and k < key:
                return k
        return None

    def first_key_with_prefix_above(self, threshold: float) -> int | None:
        """Smallest key ``k`` with ``get_sum(k) > threshold``, in
        O(log U) via binary lifting over the BIT.  Like the tree
        variants, assumes all values are non-negative."""
        if not self._nnz or self.total_sum() <= threshold:
            # Empty first: with threshold < 0 the prefix-sum test below
            # would otherwise "find" a key in an empty index.
            return None
        if self._pending:
            self._flush()
        # Largest pos (1-based prefix length) with prefix(pos) <= threshold.
        bit = 1
        while bit * 2 <= self.capacity:
            bit *= 2
        pos = 0
        remaining = threshold
        tree = self._tree
        while bit:
            nxt = pos + bit
            if nxt <= self.capacity and tree[nxt] <= remaining:
                pos = nxt
                remaining -= tree[nxt]
            bit >>= 1
        # prefix(pos + 1) > threshold, so 0-based key `pos` is the
        # answer — and carries positive value, unless even the empty
        # prefix exceeds the threshold (threshold < 0).
        if self._values[pos] == 0:
            return self.min_key()
        return pos

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[int, float]]:
        """Live ``(key, value)`` pairs in increasing key order."""
        for k, v in enumerate(self._values):
            if v != 0:
                yield (k, v)

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._tree = [0.0] * (self.capacity + 1)
        self._values = [0.0] * self.capacity
        self._pending.clear()
        self._total = 0.0
        self._nnz = 0

    def __len__(self) -> int:
        return self._nnz

    def __bool__(self) -> bool:
        return self._nnz > 0

    def __contains__(self, key: float) -> bool:
        return (
            isinstance(key, int)
            and 0 <= key < self.capacity
            and self._values[key] != 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"FenwickTree({{{entries}}})"
