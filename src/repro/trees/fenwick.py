"""Fenwick tree (Binary Indexed Tree) over a fixed integer key universe.

Related-work comparator (paper Section 6): Fenwick trees [Fenwick 1994]
answer prefix-sum queries in O(log U) over a *fixed* universe of keys
``0..capacity-1``, but have **no support for shifting key ranges** —
moving the keys of all entries above a pivot requires rebuilding, which
is exactly the gap RPAI trees fill.  The ablation benchmark
(``benchmarks/bench_rpai_ops.py``) quantifies this.
"""

from __future__ import annotations

__all__ = ["FenwickTree"]


class FenwickTree:
    """Classic BIT storing point values with prefix-sum queries.

    Args:
        capacity: size of the key universe; valid keys are
            ``0 <= key < capacity``.
    """

    __slots__ = ("_tree", "_values", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._tree = [0.0] * (capacity + 1)
        self._values = [0.0] * capacity  # point values, for get/rebuild

    def add(self, key: int, delta: float) -> None:
        """Add ``delta`` to the value at ``key``; O(log capacity)."""
        if not 0 <= key < self.capacity:
            raise IndexError(f"key {key} outside universe [0, {self.capacity})")
        self._values[key] += delta
        i = key + 1
        while i <= self.capacity:
            self._tree[i] += delta
            i += i & (-i)

    def get(self, key: int, default: float = 0.0) -> float:
        if not 0 <= key < self.capacity:
            return default
        return self._values[key]

    def put(self, key: int, value: float) -> None:
        self.add(key, value - self.get(key))

    def get_sum(self, key: int, *, inclusive: bool = True) -> float:
        """Sum of values with keys ``<= key`` (``< key`` if exclusive)."""
        upper = key if inclusive else key - 1
        upper = min(upper, self.capacity - 1)
        total = 0.0
        i = upper + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total_sum(self) -> float:
        return self.get_sum(self.capacity - 1)

    def shift_keys(self, key: int, delta: int, *, inclusive: bool = False) -> None:
        """O(capacity): Fenwick trees cannot shift keys structurally, so
        this literally rebuilds — included to make the comparison in the
        ablation benchmark honest."""
        start = key if inclusive else key + 1
        moved: dict[int, float] = {}
        for k in range(max(start, 0), self.capacity):
            if self._values[k] != 0:
                moved[k] = self._values[k]
        for k, v in moved.items():
            self.add(k, -v)
        for k, v in moved.items():
            nk = k + delta
            if not 0 <= nk < self.capacity:
                raise IndexError(f"shift moved key {k} outside the universe")
            self.add(nk, v)

    def __len__(self) -> int:
        return sum(1 for v in self._values if v != 0)
