"""Classical ordered-index substrates used as comparators and helpers.

* :class:`~repro.trees.treemap.TreeMap` — augmented absolute-key BST
  (Section 3.1 starting point; O(log n) get_sum, O(n) shift_keys).
* :class:`~repro.trees.fenwick.FenwickTree` — Binary Indexed Tree
  (Section 6 related work; fixed universe, no key shifts).
* :class:`~repro.trees.segment_tree.SegmentTree` — segment tree
  (Section 6 related work; fixed universe, no key shifts).
* :class:`~repro.trees.rpai_btree.RPAIBTree` — RPAI over a B-tree
  (Section 3.2.5's "same principles would apply to B-trees").
"""

from repro.trees.fenwick import FenwickTree
from repro.trees.rpai_btree import RPAIBTree
from repro.trees.segment_tree import SegmentTree
from repro.trees.treemap import TreeMap

__all__ = ["TreeMap", "FenwickTree", "SegmentTree", "RPAIBTree"]
