"""An augmented TreeMap: balanced BST with absolute keys and subtree sums.

This is the Section 3.1 structure — "we augment a typical TreeMap data
structure to maintain the required information in the nodes of the
tree" — *before* the parent-relative twist of Section 3.2.  It supports
``get_sum`` in O(log n) like the RPAI tree, but ``shift_keys`` must
rewrite every qualifying key and is therefore O(n).

The query engines use it wherever an *ordered* index is needed whose
keys never shift (column-keyed indexes such as ``price -> sum(volume)``
in PSP or ``quantity -> sum(extendedprice)`` in Q17), and the ablation
benchmark uses it to isolate exactly how much of RPAI's win comes from
relative keys versus from tree-based prefix sums.

Hot-path engineering (see docs/rpai_internals.md): all mutations run as
iterative loops over an explicit parent stack instead of recursive
descent; ``put``/``add`` on an existing key take an in-place fast path
that adjusts the value and the subtree sums along the stack without any
rebalancing; inserts stop rebalancing at the first level whose height
stabilizes (one-rotation AVL guarantee) and finish with O(1)-per-level
sum increments; spliced-out nodes are pooled in a bounded free list.
The AVL rotation/rebalance machinery itself is shared with the RPAI
tree via :mod:`repro.trees._avl`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK
from repro.trees._avl import height as _height
from repro.trees._avl import make_avl_ops

__all__ = ["TreeMap"]


class _Node:
    __slots__ = ("key", "value", "sum", "height", "left", "right")

    def __init__(self, key: float, value: float) -> None:
        self.key = key
        self.value = value
        self.sum = value
        self.height = 1
        self.left: _Node | None = None
        self.right: _Node | None = None


def _update(node: _Node) -> None:
    left, right = node.left, node.right
    height = 1
    total = node.value
    if left is not None:
        if left.height >= height:
            height = left.height + 1
        total += left.sum
    if right is not None:
        if right.height >= height:
            height = right.height + 1
        total += right.sum
    node.height = height
    node.sum = total


_rotate_left, _rotate_right, _rebalance = make_avl_ops(
    _update, relative=False, rotation_counter="treemap.rotations"
)

# Bounded pool of spliced-out nodes, shared by every TreeMap in the
# process: delete-heavy workloads (order-book churn) otherwise allocate
# a fresh node object for every reinserted key.
_POOL: list[_Node] = []
_POOL_MAX = 4096


def _new_node(key: float, value: float) -> _Node:
    if _POOL:
        if _SINK.enabled:
            _SINK.inc("treemap.freelist.hits")
        node = _POOL.pop()
        node.key = key
        node.value = value
        node.sum = value
        node.height = 1
        return node
    if _SINK.enabled:
        _SINK.inc("treemap.freelist.misses")
    return _Node(key, value)


def _free_node(node: _Node) -> None:
    if len(_POOL) < _POOL_MAX:
        node.left = None
        node.right = None
        _POOL.append(node)
        if _SINK.enabled:
            _SINK.observe("treemap.freelist.depth", len(_POOL))


def _build_balanced(items: list[tuple[float, float]], lo: int, hi: int) -> _Node | None:
    """Midpoint-recursive build over ``items[lo:hi]``: height-balanced
    (valid AVL) with sums/heights computed bottom-up."""
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    node = _Node(*items[mid])
    node.left = _build_balanced(items, lo, mid)
    node.right = _build_balanced(items, mid + 1, hi)
    _update(node)
    return node


class TreeMap:
    """Ordered map with O(log n) prefix sums over values.

    Implements the same AggregateIndex protocol as :class:`PAIMap` and
    :class:`RPAITree` so engines and benchmarks can swap it in; its
    ``shift_keys`` is the O(n) collect-and-rebuild the paper ascribes to
    non-relative trees.
    """

    __slots__ = ("_root", "_size", "prune_zeros")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._root: _Node | None = None
        self._size = 0
        self.prune_zeros = prune_zeros

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "TreeMap":
        """Build a balanced map from key-sorted ``(key, value)`` pairs in
        O(n) — the batched counterpart of n O(log n) :meth:`put` calls.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        tree = cls(prune_zeros=prune_zeros)
        items = [(k, v) for k, v in sorted_items if not (prune_zeros and v == 0)]
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise ValueError(
                    f"bulk_load requires strictly increasing keys, got "
                    f"{items[i - 1][0]!r} before {items[i][0]!r}"
                )
        tree._root = _build_balanced(items, 0, len(items))
        tree._size = len(items)
        if _SELF.enabled:
            tree.check_invariants()
        return tree

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    def put(self, key: float, value: float) -> None:
        if _SINK.enabled:
            _SINK.inc("treemap.put")
        self._put_root(key, value, replace=True)
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        if _SINK.enabled:
            _SINK.inc("treemap.add")
        self._put_root(key, delta, replace=False)
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        if _SINK.enabled:
            _SINK.inc("treemap.delete")
        node = self._root
        stack: list[_Node] = []
        dirs: list[bool] = []
        while node is not None and key != node.key:
            stack.append(node)
            if key < node.key:
                dirs.append(False)
                node = node.left
            else:
                dirs.append(True)
                node = node.right
        if node is None:
            raise KeyError(key)
        value = self._splice(stack, dirs, node)
        if _SELF.enabled:
            self.check_invariants()
        return value

    def pop(self, key: float, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        if _SINK.enabled:
            _SINK.inc("treemap.get_sum")
        total: float = 0
        node = self._root
        while node is not None:
            qualifies = node.key <= key if inclusive else node.key < key
            if qualifies:
                total += node.value
                if node.left is not None:
                    total += node.left.sum
                node = node.right
            else:
                node = node.left
        return total

    def total_sum(self) -> float:
        return self._root.sum if self._root is not None else 0

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """O(n): collect entries, shift the qualifying keys, rebuild.

        The rebuild merges the kept and shifted runs (both key-sorted)
        directly into a balanced tree, so the whole operation is one
        O(n) pass rather than n O(log n) re-insertions.  Keys that
        collide after the shift merge by addition (the Section 3.2.4
        aggregate special case); merges to zero are pruned under
        ``prune_zeros``.
        """
        if delta == 0 or self._root is None:
            return
        moved: list[tuple[float, float]] = []
        kept: list[tuple[float, float]] = []
        for k, v in self.items():
            qualifies = k >= key if inclusive else k > key
            (moved if qualifies else kept).append((k, v))
        if _SINK.enabled:
            _SINK.inc("treemap.shift_keys")
            _SINK.observe("treemap.shift_moved", len(moved))
        shifted = [(k + delta, v) for k, v in moved]
        merged: list[tuple[float, float]] = []
        i = j = 0
        prune = self.prune_zeros
        while i < len(kept) or j < len(shifted):
            if j >= len(shifted) or (i < len(kept) and kept[i][0] < shifted[j][0]):
                entry = kept[i]
                i += 1
            elif i >= len(kept) or shifted[j][0] < kept[i][0]:
                entry = shifted[j]
                j += 1
            else:  # equal keys collide: merge by addition
                entry = (kept[i][0], kept[i][1] + shifted[j][1])
                i += 1
                j += 1
            if prune and entry[1] == 0:
                continue
            merged.append(entry)
        self._root = _build_balanced(merged, 0, len(merged))
        self._size = len(merged)
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        node = self._root
        if node is None:
            raise KeyError("empty index")
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> float:
        node = self._root
        if node is None:
            raise KeyError("empty index")
        while node.right is not None:
            node = node.right
        return node.key

    def successor(self, key: float) -> float | None:
        best: float | None = None
        node = self._root
        while node is not None:
            if node.key > key:
                best = node.key
                node = node.left
            else:
                node = node.right
        return best

    def predecessor(self, key: float) -> float | None:
        best: float | None = None
        node = self._root
        while node is not None:
            if node.key < key:
                best = node.key
                node = node.right
            else:
                node = node.left
        return best

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        node = self._root
        if node is None or node.sum <= threshold:
            return None
        remaining = threshold
        while node is not None:
            left_sum = node.left.sum if node.left is not None else 0
            if node.left is not None and left_sum > remaining:
                node = node.left
                continue
            if left_sum + node.value > remaining:
                return node.key
            remaining -= left_sum + node.value
            node = node.right
        return None  # pragma: no cover

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        yield from self._range(self._root, lo, hi, lo_inclusive, hi_inclusive)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        node = self._root
        stack: list[_Node] = []
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._root = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: float) -> bool:
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"TreeMap({{{entries}}})"

    # -- internals --------------------------------------------------------------

    def _attach(self, stack: list[_Node], dirs: list[bool], i: int, node: _Node | None) -> None:
        """Reattach the (possibly new) root of the subtree at stack
        level ``i`` to its parent (or as the tree root for i == 0)."""
        if i == 0:
            self._root = node
        else:
            parent = stack[i - 1]
            if dirs[i - 1]:
                parent.right = node
            else:
                parent.left = node

    def _put_root(self, key: float, value: float, *, replace: bool) -> None:
        """Iterative insert/merge of ``(key, value)``, prune-aware.

        Existing keys take the fast path: set/merge the value in place
        and bump the subtree sums along the parent stack — no height or
        balance work, since the structure is unchanged.  A value that
        lands on exactly 0 under ``prune_zeros`` splices the node out
        via the already-built stack instead.
        """
        node = self._root
        prune = self.prune_zeros
        if node is None:
            if prune and value == 0:
                return
            self._root = _new_node(key, value)
            self._size = 1
            return
        stack: list[_Node] = []
        dirs: list[bool] = []
        while True:
            if key == node.key:
                new = value if replace else node.value + value
                if prune and new == 0:
                    self._splice(stack, dirs, node)
                    return
                delta = new - node.value
                node.value = new
                if delta:
                    node.sum += delta
                    for ancestor in stack:
                        ancestor.sum += delta
                return
            stack.append(node)
            if key < node.key:
                dirs.append(False)
                child = node.left
            else:
                dirs.append(True)
                child = node.right
            if child is None:
                break
            node = child
        if prune and value == 0:
            return
        leaf = _new_node(key, value)
        self._size += 1
        if dirs[-1]:
            node.right = leaf
        else:
            node.left = leaf
        # Unwind: full rebalance until the height stabilizes (AVL insert
        # needs at most one rotation, after which every ancestor keeps
        # its pre-insert height), then sums-only increments.
        i = len(stack) - 1
        while i >= 0:
            current = stack[i]
            old_height = current.height
            balanced = _rebalance(current)
            if balanced is not current:
                self._attach(stack, dirs, i, balanced)
                i -= 1
                break
            if balanced.height == old_height:
                i -= 1
                break
            i -= 1
        while i >= 0:
            stack[i].sum += value
            i -= 1

    def _splice(self, stack: list[_Node], dirs: list[bool], node: _Node) -> float:
        """Remove ``node`` (found at the bottom of ``stack``) and
        rebalance the path; returns the removed value."""
        value = node.value
        if node.left is not None and node.right is not None:
            # Two children: copy the in-order successor's entry into
            # ``node``, then splice the successor out of the right
            # subtree (it has no left child by construction).
            stack.append(node)
            dirs.append(True)
            successor = node.right
            while successor.left is not None:
                stack.append(successor)
                dirs.append(False)
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            replacement = successor.right
            parent = stack[-1]
            if dirs[-1]:
                parent.right = replacement
            else:
                parent.left = replacement
            _free_node(successor)
        else:
            replacement = node.right if node.left is None else node.left
            if stack:
                parent = stack[-1]
                if dirs[-1]:
                    parent.right = replacement
                else:
                    parent.left = replacement
            else:
                self._root = replacement
            _free_node(node)
        self._size -= 1
        for i in range(len(stack) - 1, -1, -1):
            current = stack[i]
            balanced = _rebalance(current)
            if balanced is not current:
                self._attach(stack, dirs, i, balanced)
        return value

    def _range(
        self,
        node: _Node | None,
        lo: float,
        hi: float,
        lo_inclusive: bool,
        hi_inclusive: bool,
    ) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        above_lo = node.key >= lo if lo_inclusive else node.key > lo
        below_hi = node.key <= hi if hi_inclusive else node.key < hi
        if above_lo:
            yield from self._range(node.left, lo, hi, lo_inclusive, hi_inclusive)
        if above_lo and below_hi:
            yield (node.key, node.value)
        if below_hi:
            yield from self._range(node.right, lo, hi, lo_inclusive, hi_inclusive)

    # -- validation (tests / self-check mode) -----------------------------------

    def validate(self) -> None:
        """Public invariant self-check (alias of :meth:`check_invariants`);
        runs automatically per mutation under ``REPRO_SELFCHECK=1``."""
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify BST order, AVL balance, heights and subtree sums."""
        if _SINK.enabled:
            _SINK.inc("selfcheck.validations")
        size = self._validate(self._root, None, None)
        assert size == self._size, "size mismatch"

    def _validate(self, node: _Node | None, lo: float | None, hi: float | None) -> int:
        if node is None:
            return 0
        assert lo is None or node.key > lo, "BST violation"
        assert hi is None or node.key < hi, "BST violation"
        left_size = self._validate(node.left, lo, node.key)
        right_size = self._validate(node.right, node.key, hi)
        assert node.height == 1 + max(_height(node.left), _height(node.right))
        assert abs(_height(node.left) - _height(node.right)) <= 1, "AVL imbalance"
        expected = node.value
        if node.left is not None:
            expected += node.left.sum
        if node.right is not None:
            expected += node.right.sum
        assert node.sum == expected, "sum mismatch"
        return left_size + right_size + 1
