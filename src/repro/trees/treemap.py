"""An augmented TreeMap: balanced BST with absolute keys and subtree sums.

This is the Section 3.1 structure — "we augment a typical TreeMap data
structure to maintain the required information in the nodes of the
tree" — *before* the parent-relative twist of Section 3.2.  It supports
``get_sum`` in O(log n) like the RPAI tree, but ``shift_keys`` must
rewrite every qualifying key and is therefore O(n).

The query engines use it wherever an *ordered* index is needed whose
keys never shift (column-keyed indexes such as ``price -> sum(volume)``
in PSP or ``quantity -> sum(extendedprice)`` in Q17), and the ablation
benchmark uses it to isolate exactly how much of RPAI's win comes from
relative keys versus from tree-based prefix sums.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK

__all__ = ["TreeMap"]


class _Node:
    __slots__ = ("key", "value", "sum", "height", "left", "right")

    def __init__(self, key: float, value: float) -> None:
        self.key = key
        self.value = value
        self.sum = value
        self.height = 1
        self.left: _Node | None = None
        self.right: _Node | None = None


def _height(node: _Node | None) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.sum = node.value
    if node.left is not None:
        node.sum += node.left.sum
    if node.right is not None:
        node.sum += node.right.sum


def _rotate_left(h: _Node) -> _Node:
    if _SINK.enabled:
        _SINK.inc("treemap.rotations")
    x = h.right
    assert x is not None
    h.right = x.left
    x.left = h
    _update(h)
    _update(x)
    return x


def _rotate_right(h: _Node) -> _Node:
    if _SINK.enabled:
        _SINK.inc("treemap.rotations")
    x = h.left
    assert x is not None
    h.left = x.right
    x.right = h
    _update(h)
    _update(x)
    return x


def _build_balanced(items: list[tuple[float, float]], lo: int, hi: int) -> _Node | None:
    """Midpoint-recursive build over ``items[lo:hi]``: height-balanced
    (valid AVL) with sums/heights computed bottom-up."""
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    node = _Node(*items[mid])
    node.left = _build_balanced(items, lo, mid)
    node.right = _build_balanced(items, mid + 1, hi)
    _update(node)
    return node


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _height(node.left) - _height(node.right)
    if balance > 1:
        assert node.left is not None
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class TreeMap:
    """Ordered map with O(log n) prefix sums over values.

    Implements the same AggregateIndex protocol as :class:`PAIMap` and
    :class:`RPAITree` so engines and benchmarks can swap it in; its
    ``shift_keys`` is the O(n) collect-and-rebuild the paper ascribes to
    non-relative trees.
    """

    __slots__ = ("_root", "_size", "prune_zeros")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._root: _Node | None = None
        self._size = 0
        self.prune_zeros = prune_zeros

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "TreeMap":
        """Build a balanced map from key-sorted ``(key, value)`` pairs in
        O(n) — the batched counterpart of n O(log n) :meth:`put` calls.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        tree = cls(prune_zeros=prune_zeros)
        items = [(k, v) for k, v in sorted_items if not (prune_zeros and v == 0)]
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise ValueError(
                    f"bulk_load requires strictly increasing keys, got "
                    f"{items[i - 1][0]!r} before {items[i][0]!r}"
                )
        tree._root = _build_balanced(items, 0, len(items))
        tree._size = len(items)
        if _SELF.enabled:
            tree.check_invariants()
        return tree

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    def put(self, key: float, value: float) -> None:
        if _SINK.enabled:
            _SINK.inc("treemap.put")
        if self.prune_zeros and value == 0:
            if key in self:
                self.delete(key)
            return
        self._root = self._put(self._root, key, value, replace=True)
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        if _SINK.enabled:
            _SINK.inc("treemap.add")
        if self.prune_zeros:
            current = self.get(key, None)
            if current is None:
                if delta == 0:
                    return
            elif current + delta == 0:
                self.delete(key)
                return
        self._root = self._put(self._root, key, delta, replace=False)
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        if _SINK.enabled:
            _SINK.inc("treemap.delete")
        self._root, value = self._delete(self._root, key)
        if _SELF.enabled:
            self.check_invariants()
        return value

    def pop(self, key: float, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        if _SINK.enabled:
            _SINK.inc("treemap.get_sum")
        total: float = 0
        node = self._root
        while node is not None:
            qualifies = node.key <= key if inclusive else node.key < key
            if qualifies:
                total += node.value
                if node.left is not None:
                    total += node.left.sum
                node = node.right
            else:
                node = node.left
        return total

    def total_sum(self) -> float:
        return self._root.sum if self._root is not None else 0

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """O(n): extract qualifying entries, rebuild with shifted keys."""
        if delta == 0:
            return
        moved: list[tuple[float, float]] = []
        kept: list[tuple[float, float]] = []
        for k, v in self.items():
            qualifies = k >= key if inclusive else k > key
            (moved if qualifies else kept).append((k, v))
        if _SINK.enabled:
            _SINK.inc("treemap.shift_keys")
            _SINK.observe("treemap.shift_moved", len(moved))
        self.clear()
        for k, v in kept:
            self.add(k, v)
        for k, v in moved:
            self.add(k + delta, v)
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        node = self._root
        if node is None:
            raise KeyError("empty index")
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> float:
        node = self._root
        if node is None:
            raise KeyError("empty index")
        while node.right is not None:
            node = node.right
        return node.key

    def successor(self, key: float) -> float | None:
        best: float | None = None
        node = self._root
        while node is not None:
            if node.key > key:
                best = node.key
                node = node.left
            else:
                node = node.right
        return best

    def predecessor(self, key: float) -> float | None:
        best: float | None = None
        node = self._root
        while node is not None:
            if node.key < key:
                best = node.key
                node = node.right
            else:
                node = node.left
        return best

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        node = self._root
        if node is None or node.sum <= threshold:
            return None
        remaining = threshold
        while node is not None:
            left_sum = node.left.sum if node.left is not None else 0
            if node.left is not None and left_sum > remaining:
                node = node.left
                continue
            if left_sum + node.value > remaining:
                return node.key
            remaining -= left_sum + node.value
            node = node.right
        return None  # pragma: no cover

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        yield from self._range(self._root, lo, hi, lo_inclusive, hi_inclusive)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        yield from self._items(self._root)

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._root = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: float) -> bool:
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"TreeMap({{{entries}}})"

    # -- internals --------------------------------------------------------------

    def _put(self, node: _Node | None, key: float, value: float, *, replace: bool) -> _Node:
        if node is None:
            self._size += 1
            return _Node(key, value)
        if key == node.key:
            node.value = value if replace else node.value + value
            _update(node)
            return node
        if key < node.key:
            node.left = self._put(node.left, key, value, replace=replace)
        else:
            node.right = self._put(node.right, key, value, replace=replace)
        return _rebalance(node)

    def _delete(self, node: _Node | None, key: float) -> tuple[_Node | None, float]:
        if node is None:
            raise KeyError(key)
        if key < node.key:
            node.left, value = self._delete(node.left, key)
        elif key > node.key:
            node.right, value = self._delete(node.right, key)
        else:
            value = node.value
            if node.left is None:
                self._size -= 1
                return node.right, value
            if node.right is None:
                self._size -= 1
                return node.left, value
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            node.right, _ = self._delete(node.right, successor.key)
        return _rebalance(node), value

    def _items(self, node: _Node | None) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        yield from self._items(node.left)
        yield (node.key, node.value)
        yield from self._items(node.right)

    def _range(
        self,
        node: _Node | None,
        lo: float,
        hi: float,
        lo_inclusive: bool,
        hi_inclusive: bool,
    ) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        above_lo = node.key >= lo if lo_inclusive else node.key > lo
        below_hi = node.key <= hi if hi_inclusive else node.key < hi
        if above_lo:
            yield from self._range(node.left, lo, hi, lo_inclusive, hi_inclusive)
        if above_lo and below_hi:
            yield (node.key, node.value)
        if below_hi:
            yield from self._range(node.right, lo, hi, lo_inclusive, hi_inclusive)

    # -- validation (tests / self-check mode) -----------------------------------

    def validate(self) -> None:
        """Public invariant self-check (alias of :meth:`check_invariants`);
        runs automatically per mutation under ``REPRO_SELFCHECK=1``."""
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify BST order, AVL balance, heights and subtree sums."""
        if _SINK.enabled:
            _SINK.inc("selfcheck.validations")
        size = self._validate(self._root, None, None)
        assert size == self._size, "size mismatch"

    def _validate(self, node: _Node | None, lo: float | None, hi: float | None) -> int:
        if node is None:
            return 0
        assert lo is None or node.key > lo, "BST violation"
        assert hi is None or node.key < hi, "BST violation"
        left_size = self._validate(node.left, lo, node.key)
        right_size = self._validate(node.right, node.key, hi)
        assert node.height == 1 + max(_height(node.left), _height(node.right))
        assert abs(_height(node.left) - _height(node.right)) <= 1, "AVL imbalance"
        expected = node.value
        if node.left is not None:
            expected += node.left.sum
        if node.right is not None:
            expected += node.right.sum
        assert node.sum == expected, "sum mismatch"
        return left_size + right_size + 1
