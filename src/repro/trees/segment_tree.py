"""Segment tree over a fixed integer key universe.

Related-work comparator (paper Section 6): segment trees [de Berg et
al. 2008] support range-sum queries in O(log U) and, with lazy
propagation, range *value* updates — but like Fenwick trees they index
positions in a fixed universe and cannot shift the keys themselves.
Included for the Section 6 comparison benchmark.
"""

from __future__ import annotations

__all__ = ["SegmentTree"]


class SegmentTree:
    """Iterative segment tree with point updates and range-sum queries.

    Keys are integers in ``[0, capacity)``; the tree size is rounded up
    to the next power of two.
    """

    __slots__ = ("_size", "_tree", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        size = 1
        while size < capacity:
            size *= 2
        self._size = size
        self._tree = [0.0] * (2 * size)

    def add(self, key: int, delta: float) -> None:
        """Add ``delta`` to the value at ``key``; O(log capacity)."""
        if not 0 <= key < self.capacity:
            raise IndexError(f"key {key} outside universe [0, {self.capacity})")
        i = key + self._size
        while i >= 1:
            self._tree[i] += delta
            i //= 2

    def put(self, key: int, value: float) -> None:
        self.add(key, value - self.get(key))

    def get(self, key: int, default: float = 0.0) -> float:
        if not 0 <= key < self.capacity:
            return default
        return self._tree[key + self._size]

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of values for keys in ``[lo, hi]`` (inclusive both ends)."""
        lo = max(lo, 0)
        hi = min(hi, self.capacity - 1)
        if lo > hi:
            return 0.0
        total = 0.0
        left = lo + self._size
        right = hi + self._size + 1
        while left < right:
            if left & 1:
                total += self._tree[left]
                left += 1
            if right & 1:
                right -= 1
                total += self._tree[right]
            left //= 2
            right //= 2
        return total

    def get_sum(self, key: int, *, inclusive: bool = True) -> float:
        upper = key if inclusive else key - 1
        return self.range_sum(0, upper)

    def total_sum(self) -> float:
        return self._tree[1]

    def __len__(self) -> int:
        return sum(1 for i in range(self.capacity) if self._tree[i + self._size] != 0)
