"""Segment tree over a dense integer key universe — a full index backend.

Historically this module was only a related-work comparator (paper
Section 6): segment trees [de Berg et al. 2008] support range-sum
queries in O(log U) but, like Fenwick trees, index positions in a fixed
universe and cannot shift the keys themselves.

It is now also a real :class:`~repro.core.interfaces.AggregateIndex`
backend, one of the five candidates the cost model ranks (see
``core/costmodel.py``).  Compared to the Fenwick backend it trades a
lazier update path for an O(1) point read and an eager O(log U) add:

* ``add`` walks leaf-to-root (O(log U), no pending queue), so prefix
  reads never pay a flush;
* ``get`` is a single leaf read, O(1);
* ``get_sum`` is the classic iterative bottom-up range sum, O(log U);
* ``first_key_with_prefix_above`` descends from the root, O(log U).

Like Fenwick it has prune-zeros semantics baked in (a zero value *is*
absence — the only mode the engines use), grows its universe by
doubling, and serves the order/search helpers with O(U) scans (no hot
path uses them on this backend).  Out-of-universe keys — negative or
non-integer — raise the typed :class:`~repro.errors.KeyUniverseError`
instead of a bare ``IndexError``; keys at or above the current capacity
are *not* errors, they trigger :meth:`grow`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import KeyUniverseError
from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK

__all__ = ["SegmentTree"]


class SegmentTree:
    """Iterative segment tree with point updates and range-sum queries.

    Keys are integers in ``[0, capacity)``; the tree size is rounded up
    to the next power of two and doubles on demand.

    Args:
        capacity: initial size of the key universe.
        prune_zeros: accepted for :class:`AggregateIndex` parity.  A
            segment tree cannot represent an explicit zero-valued entry
            distinctly from an absent key, so zero always means absent
            regardless of this flag; the backend selector only picks
            this backend for prune-zeros roles, where the semantics
            coincide.
    """

    __slots__ = ("_size", "_tree", "_nnz", "capacity", "prune_zeros")

    def __init__(self, capacity: int = 1024, *, prune_zeros: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.prune_zeros = prune_zeros
        size = 1
        while size < capacity:
            size *= 2
        self._size = size
        self._tree = [0.0] * (2 * size)
        self._nnz = 0  # number of non-zero leaves, for O(1) len()

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[int, float]],
        *,
        prune_zeros: bool = False,
        capacity: int | None = None,
    ) -> "SegmentTree":
        """Build from key-sorted ``(key, value)`` pairs in O(n + U).

        Leaves are written directly and the internal sums are built with
        one linear parent pass instead of n O(log U) ``add`` calls.

        Raises:
            ValueError: when keys are not strictly increasing
                non-negative integers.
        """
        items = [(k, v) for k, v in sorted_items if v != 0]
        if capacity is None:
            capacity = max(1024, items[-1][0] + 1 if items else 0)
        seg = cls(capacity, prune_zeros=prune_zeros)
        tree = seg._tree
        size = seg._size
        last = -1
        for key, value in items:
            if not isinstance(key, int) or not 0 <= key < capacity:
                raise ValueError(f"bulk_load key {key!r} outside universe [0, {capacity})")
            if key <= last:
                raise ValueError("bulk_load requires strictly increasing keys")
            last = key
            tree[size + key] = value
        for i in range(size - 1, 0, -1):
            tree[i] = tree[2 * i] + tree[2 * i + 1]
        seg._nnz = len(items)
        return seg

    def _check_key(self, key: int) -> int:
        """Validate ``key`` as a universe index, growing if needed."""
        if type(key) is not int:
            # Integer-valued floats (3.0) are accepted the way the
            # adaptive wrapper normalizes them; anything else is out of
            # the universe by construction.
            if isinstance(key, float) and key.is_integer():
                key = int(key)
            elif isinstance(key, int):  # bool
                key = int(key)
            else:
                raise KeyUniverseError(f"key {key!r} is not a dense integer key")
        if key < 0:
            raise KeyUniverseError(f"key {key} outside universe [0, inf)")
        if key >= self.capacity:
            self.grow(key + 1)
        return key

    def grow(self, min_capacity: int) -> None:
        """Extend the key universe to at least ``min_capacity`` by
        doubling, rebuilding the internal sums in O(new capacity).
        Amortized O(1) per insert."""
        capacity = self.capacity
        while capacity < min_capacity:
            capacity *= 2
        if capacity == self.capacity:
            return
        size = 1
        while size < capacity:
            size *= 2
        old_tree = self._tree
        old_size = self._size
        tree = [0.0] * (2 * size)
        tree[size : size + old_size] = old_tree[old_size : 2 * old_size]
        for i in range(size - 1, 0, -1):
            tree[i] = tree[2 * i] + tree[2 * i + 1]
        self._tree = tree
        self._size = size
        self.capacity = capacity
        _SINK.inc("segment.grows")

    # -- basic map operations -------------------------------------------------

    def add(self, key: int, delta: float) -> None:
        """Add ``delta`` to the value at ``key``; O(log capacity)."""
        key = self._check_key(key)
        tree = self._tree
        i = key + self._size
        old = tree[i]
        new = old + delta
        if old == 0:
            if new != 0:
                self._nnz += 1
        elif new == 0:
            self._nnz -= 1
        while i >= 1:
            tree[i] += delta
            i //= 2
        if _SELF.enabled:
            self.check_invariants()

    def get(self, key: int, default: float = 0.0) -> float:
        if type(key) is not int:
            if isinstance(key, float) and key.is_integer():
                key = int(key)
            elif isinstance(key, int):
                key = int(key)
            else:
                return default
        if not 0 <= key < self.capacity:
            return default
        value = self._tree[key + self._size]
        return value if value != 0 else default

    def put(self, key: int, value: float) -> None:
        key = self._check_key(key)
        self.add(key, value - self._tree[key + self._size])

    def delete(self, key: int) -> float:
        """Remove ``key`` (zero its value) and return the old value.

        Raises:
            KeyError: if no non-zero value is stored at ``key``.
        """
        if key not in self:
            raise KeyError(key)
        value = self._tree[int(key) + self._size]
        self.add(key, -value)
        return value

    def pop(self, key: int, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of values for keys in ``[lo, hi]`` (inclusive both ends)."""
        lo = max(lo, 0)
        hi = min(hi, self.capacity - 1)
        if lo > hi:
            return 0.0
        total = 0.0
        tree = self._tree
        left = lo + self._size
        right = hi + self._size + 1
        while left < right:
            if left & 1:
                total += tree[left]
                left += 1
            if right & 1:
                right -= 1
                total += tree[right]
            left //= 2
            right //= 2
        return total

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        """Sum of values with keys ``<= key`` (``< key`` if exclusive);
        O(log capacity).  Fractional keys floor the way the adaptive
        wrapper does: no integer lies in ``(floor(key), key]``."""
        if type(key) is not int:
            key = int(key // 1)
        upper = key if inclusive else key - 1
        return self.range_sum(0, upper)

    def total_sum(self) -> float:
        """Sum of all values — the root node, O(1)."""
        return self._tree[1]

    def suffix_sum(self, key: int, *, inclusive: bool = False) -> float:
        """Sum of values over entries with key ``> key`` (``>= key``)."""
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: int, delta: int, *, inclusive: bool = False) -> None:
        """O(capacity): like the Fenwick backend, a positional structure
        cannot shift keys structurally, so this literally moves every
        affected entry — included to make the cost-model comparison
        honest.  (The adaptive wrapper migrates to a relative-key tree
        *before* ever calling this.)"""
        start = key if inclusive else key + 1
        size = self._size
        tree = self._tree
        moved: list[tuple[int, float]] = []
        for k in range(max(int(start), 0), self.capacity):
            value = tree[size + k]
            if value != 0:
                moved.append((k, value))
        for k, v in moved:
            if k + delta < 0:
                raise KeyUniverseError(f"shift moved key {k} outside the universe")
        for k, v in moved:
            self.add(k, -v)
        for k, v in moved:
            self.add(k + delta, v)
        _SINK.inc("segment.shift_rebuilds")

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> int:
        """Smallest live key; raises KeyError when empty.  O(U)."""
        if self._nnz:
            size = self._size
            tree = self._tree
            for k in range(self.capacity):
                if tree[size + k] != 0:
                    return k
        raise KeyError("empty index")

    def max_key(self) -> int:
        """Largest live key; raises KeyError when empty.  O(U)."""
        if self._nnz:
            size = self._size
            tree = self._tree
            for k in range(self.capacity - 1, -1, -1):
                if tree[size + k] != 0:
                    return k
        raise KeyError("empty index")

    def successor(self, key: float) -> int | None:
        """Smallest live key strictly greater than ``key``.  O(U)."""
        size = self._size
        tree = self._tree
        for k in range(max(int(key) + 1 if key >= 0 else 0, 0), self.capacity):
            if tree[size + k] != 0 and k > key:
                return k
        return None

    def predecessor(self, key: float) -> int | None:
        """Largest live key strictly smaller than ``key``.  O(U)."""
        size = self._size
        tree = self._tree
        for k in range(min(int(key), self.capacity - 1), -1, -1):
            if tree[size + k] != 0 and k < key:
                return k
        return None

    def first_key_with_prefix_above(self, threshold: float) -> int | None:
        """Smallest key ``k`` with ``get_sum(k) > threshold``, by
        descending from the root in O(log U).  Like the other backends,
        assumes all values are non-negative."""
        if not self._nnz or self._tree[1] <= threshold:
            # Empty first: with threshold < 0 the descent below would
            # otherwise "find" a key in an empty index.
            return None
        tree = self._tree
        i = 1
        remaining = threshold
        while i < self._size:
            left = 2 * i
            if tree[left] > remaining:
                i = left
            else:
                remaining -= tree[left]
                i = left + 1
        key = i - self._size
        if tree[i] == 0:
            # threshold < 0 landed on an empty leaf: the answer is the
            # first live key (its prefix already exceeds the threshold).
            return self.min_key()
        return key

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[int, float]]:
        """Live ``(key, value)`` pairs in increasing key order."""
        size = self._size
        tree = self._tree
        for k in range(self.capacity):
            value = tree[size + k]
            if value != 0:
                yield (k, value)

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._tree = [0.0] * (2 * self._size)
        self._nnz = 0

    def check_invariants(self) -> None:
        """O(U) structural validation: every internal node must equal the
        sum of its children and the non-zero count must match."""
        tree = self._tree
        for i in range(1, self._size):
            expected = tree[2 * i] + tree[2 * i + 1]
            if abs(tree[i] - expected) > 1e-6:
                raise AssertionError(
                    f"segment node {i}: cached {tree[i]!r} != children {expected!r}"
                )
        nnz = sum(1 for i in range(self.capacity) if tree[self._size + i] != 0)
        if nnz != self._nnz:
            raise AssertionError(f"segment nnz {self._nnz} != actual {nnz}")

    def __len__(self) -> int:
        return self._nnz

    def __bool__(self) -> bool:
        return self._nnz > 0

    def __contains__(self, key: float) -> bool:
        if isinstance(key, float) and key.is_integer():
            key = int(key)
        return (
            isinstance(key, int)
            and 0 <= key < self.capacity
            and self._tree[int(key) + self._size] != 0
        )

    def __getstate__(self) -> dict:
        return {
            "capacity": self.capacity,
            "prune_zeros": self.prune_zeros,
            "items": list(self.items()),
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.prune_zeros = state["prune_zeros"]
        size = 1
        while size < self.capacity:
            size *= 2
        self._size = size
        self._tree = [0.0] * (2 * size)
        self._nnz = 0
        for key, value in state["items"]:
            self.add(key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"SegmentTree({{{entries}}})"
