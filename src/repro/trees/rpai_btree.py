"""RPAI over a B-tree (paper Section 3.2.5: "the same principles would
apply to B-trees as well").

Layout: a classic order-``2t`` B-tree in which every child pointer
carries an **offset** — the displacement of the child's key frame
relative to its parent's.  A node's stored keys are relative to its own
frame, so the actual key of an element is the sum of the offsets along
its path plus the stored key.  Shifting an entire child subtree is then
``offsets[i] += d`` — O(1) — and ``shift_keys(k, d)`` touches one seam
path: O(t · log_t n).

Each node also caches its subtree's value ``sum`` and its min/max key
(relative to its own frame), giving O(t · log_t n) ``get_sum`` and
violation detection.

Scope relative to :class:`~repro.core.rpai.RPAITree` (the package
default): positive shifts and order-preserving negative shifts are
fully logarithmic; a negative shift that *breaks* key order (possible
only when the offset exceeds the gap at the boundary — the Section
3.2.4 merge case) is detected along the seam and handled by an O(n)
bulk rebuild with merge-on-collision.  B-tree nodes must keep uniform
leaf depth, which rules out the binary tree's local extract-and-
reinsert repair; the AVL-based RPAITree remains the structure the
engines use, and this variant exists for the Section 3.2.5 claim and
the wide-node ablation.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK

__all__ = ["RPAIBTree"]


class _BNode:
    __slots__ = ("keys", "values", "children", "offsets", "sum", "size", "min_rel", "max_rel")

    def __init__(self) -> None:
        self.keys: list[float] = []
        self.values: list[float] = []
        self.children: list["_BNode"] | None = None  # None for leaves
        self.offsets: list[float] | None = None
        self.sum: float = 0
        self.size: int = 0
        self.min_rel: float = 0
        self.max_rel: float = 0

    @property
    def leaf(self) -> bool:
        return self.children is None

    def refresh(self) -> None:
        """Recompute cached aggregates from keys/values/children."""
        total = sum(self.values)
        count = len(self.keys)
        if self.children is not None:
            assert self.offsets is not None
            for child in self.children:
                total += child.sum
                count += child.size
            self.min_rel = self.offsets[0] + self.children[0].min_rel
            self.max_rel = self.offsets[-1] + self.children[-1].max_rel
        else:
            self.min_rel = self.keys[0] if self.keys else 0
            self.max_rel = self.keys[-1] if self.keys else 0
        self.sum = total
        self.size = count


class RPAIBTree:
    """B-tree Relative Partial Aggregate Index.

    Args:
        min_degree: the B-tree ``t``; nodes hold t-1 .. 2t-1 keys.
        prune_zeros: remove entries whose value becomes exactly 0.
    """

    def __init__(self, *, min_degree: int = 16, prune_zeros: bool = False) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self.t = min_degree
        self.prune_zeros = prune_zeros
        self._root = _BNode()
        self._root.refresh()

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
        min_degree: int = 16,
    ) -> "RPAIBTree":
        """Build from key-sorted ``(key, value)`` pairs.

        Sequential insertion of ascending keys only ever touches the
        rightmost path, so this runs in O(n log_t n) with small
        constants — adequate for the warm-start path; this backend has
        no O(n) linear build the way the array-backed ones do.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        tree = cls(min_degree=min_degree, prune_zeros=prune_zeros)
        last: float | None = None
        for key, value in sorted_items:
            if last is not None and key <= last:
                raise ValueError("bulk_load requires strictly increasing keys")
            last = key
            if prune_zeros and value == 0:
                continue
            tree._insert(key, value, replace=True)
        if _SELF.enabled:
            tree.check_invariants()
        return tree

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        node = self._root
        remaining = key
        while True:
            index = bisect.bisect_left(node.keys, remaining)
            if index < len(node.keys) and node.keys[index] == remaining:
                return node.values[index]
            if node.leaf:
                return default
            assert node.children is not None and node.offsets is not None
            remaining -= node.offsets[index]
            node = node.children[index]

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    def put(self, key: float, value: float) -> None:
        if self.prune_zeros and value == 0:
            if key in self:
                self.delete(key)
            return
        self._insert(key, value, replace=True)
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        if self.prune_zeros:
            current = self.get(key, None)  # type: ignore[arg-type]
            if current is None:
                if delta == 0:
                    return
            elif current + delta == 0:
                self.delete(key)
                return
        self._insert(key, delta, replace=False)
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        value = self._delete(self._root, key)
        root = self._root
        if not root.keys and root.children is not None:
            # Height shrinks: promote the only child, folding its offset
            # into its contents' frame (the child becomes the root, whose
            # frame is absolute).
            assert root.offsets is not None
            child = root.children[0]
            offset = root.offsets[0]
            _rebase(child, offset)
            self._root = child
        if _SELF.enabled:
            self.check_invariants()
        return value

    def pop(self, key: float, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        total: float = 0
        node = self._root
        remaining = key
        while True:
            if inclusive:
                boundary = bisect.bisect_right(node.keys, remaining)
            else:
                boundary = bisect.bisect_left(node.keys, remaining)
            total += sum(node.values[:boundary])
            if node.leaf:
                return total
            assert node.children is not None and node.offsets is not None
            for child_index in range(boundary):
                total += node.children[child_index].sum
            remaining -= node.offsets[boundary]
            node = node.children[boundary]

    def total_sum(self) -> float:
        return self._root.sum

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """Shift qualifying keys by ``delta``.

        Positive deltas and order-preserving negative deltas are
        O(t log n).  An order-breaking negative delta is detected on the
        seam and resolved by an O(n) rebuild with merge-on-collision.
        """
        if delta == 0 or self._root.size == 0:
            return
        violated = self._shift(self._root, key, delta, inclusive)
        if violated:
            self._rebuild_merging()
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        if self._root.size == 0:
            raise KeyError("empty index")
        return self._root.min_rel

    def max_key(self) -> float:
        if self._root.size == 0:
            raise KeyError("empty index")
        return self._root.max_rel

    def successor(self, key: float) -> float | None:
        """Smallest key strictly greater than ``key``; O(t log_t n)."""
        node = self._root
        if node.size == 0:
            return None
        remaining = key
        best: float | None = None
        while True:
            index = bisect.bisect_right(node.keys, remaining)
            if index < len(node.keys):
                best = (key - remaining) + node.keys[index]
            if node.leaf:
                return best
            assert node.children is not None and node.offsets is not None
            remaining -= node.offsets[index]
            node = node.children[index]

    def predecessor(self, key: float) -> float | None:
        """Largest key strictly smaller than ``key``; O(t log_t n)."""
        node = self._root
        if node.size == 0:
            return None
        remaining = key
        best: float | None = None
        while True:
            index = bisect.bisect_left(node.keys, remaining)
            if index > 0:
                best = (key - remaining) + node.keys[index - 1]
            if node.leaf:
                return best
            assert node.children is not None and node.offsets is not None
            remaining -= node.offsets[index]
            node = node.children[index]

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        """Smallest key ``k`` with ``get_sum(k) > threshold``, descending
        through the cached subtree sums in O(t log_t n).  Like the other
        backends, assumes all values are non-negative."""
        node = self._root
        if node.size == 0 or node.sum <= threshold:
            # Empty first: with threshold < 0 the descent below would
            # otherwise "find" a key in an empty index.
            return None
        base: float = 0
        remaining = threshold
        while True:
            if node.leaf:
                for key, value in zip(node.keys, node.values):
                    if value > remaining:
                        return base + key
                    remaining -= value
                return None  # unreachable while values are non-negative
            assert node.children is not None and node.offsets is not None
            descended = False
            for index, child in enumerate(node.children):
                if child.sum > remaining:
                    base += node.offsets[index]
                    node = child
                    descended = True
                    break
                remaining -= child.sum
                if index < len(node.keys):
                    if node.values[index] > remaining:
                        return base + node.keys[index]
                    remaining -= node.values[index]
            if not descended:
                return None  # unreachable while values are non-negative

    def items(self) -> Iterator[tuple[float, float]]:
        yield from self._items(self._root, 0)

    def keys(self) -> Iterator[float]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[float]:
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        self._root = _BNode()
        self._root.refresh()

    def __len__(self) -> int:
        return self._root.size

    def __bool__(self) -> bool:
        return self._root.size > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"RPAIBTree({{{entries}}})"

    # -- internals: insert ------------------------------------------------------

    def _insert(self, key: float, value: float, *, replace: bool) -> None:
        root = self._root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _BNode()
            new_root.children = [root]
            new_root.offsets = [0]
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value, replace)

    def _split_child(self, parent: _BNode, index: int) -> None:
        """Split the full child at ``index``; the sibling inherits the
        child's frame, so no keys are rebased."""
        t = self.t
        assert parent.children is not None and parent.offsets is not None
        child = parent.children[index]
        offset = parent.offsets[index]
        sibling = _BNode()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            assert child.children is not None and child.offsets is not None
            sibling.children = child.children[t:]
            sibling.offsets = child.offsets[t:]
            child.children = child.children[:t]
            child.offsets = child.offsets[:t]
        median_key = child.keys[t - 1]
        median_value = child.values[t - 1]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        child.refresh()
        sibling.refresh()
        parent.keys.insert(index, median_key + offset)
        parent.values.insert(index, median_value)
        parent.children.insert(index + 1, sibling)
        parent.offsets.insert(index + 1, offset)
        parent.refresh()

    def _insert_nonfull(self, node: _BNode, key: float, value: float, replace: bool) -> None:
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value if replace else node.values[index] + value
            node.refresh()
            return
        if node.leaf:
            node.keys.insert(index, key)
            node.values.insert(index, value)
            node.refresh()
            return
        assert node.children is not None and node.offsets is not None
        if len(node.children[index].keys) == 2 * self.t - 1:
            self._split_child(node, index)
            if key == node.keys[index]:
                node.values[index] = value if replace else node.values[index] + value
                node.refresh()
                return
            if key > node.keys[index]:
                index += 1
        self._insert_nonfull(node.children[index], key - node.offsets[index], value, replace)
        node.refresh()

    # -- internals: delete -------------------------------------------------------

    def _delete(self, node: _BNode, key: float) -> float:
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                value = node.values.pop(index)
                node.refresh()
                return value
            value = node.values[index]
            self._delete_internal_key(node, index)
            node.refresh()
            return value
        if node.leaf:
            raise KeyError(key)
        assert node.children is not None and node.offsets is not None
        index = self._ensure_degree(node, index, key)
        result = self._delete(node.children[index], key - node.offsets[index])
        node.refresh()
        return result

    def _delete_internal_key(self, node: _BNode, index: int) -> None:
        """Remove keys[index] of an internal node via predecessor /
        successor / merge, as in CLRS."""
        t = self.t
        assert node.children is not None and node.offsets is not None
        left, right = node.children[index], node.children[index + 1]
        if len(left.keys) >= t:
            pred_key, pred_value = _max_entry(left)
            node.keys[index] = pred_key + node.offsets[index]
            node.values[index] = pred_value
            self._delete(left, pred_key)
        elif len(right.keys) >= t:
            succ_key, succ_value = _min_entry(right)
            node.keys[index] = succ_key + node.offsets[index + 1]
            node.values[index] = succ_value
            self._delete(right, succ_key)
        else:
            target = node.keys[index] - node.offsets[index]
            self._merge_children(node, index)
            self._delete(node.children[index], target)

    def _ensure_degree(self, node: _BNode, index: int, key: float) -> int:
        """Guarantee children[index] has >= t keys before descending;
        returns the (possibly changed) child index for ``key``."""
        t = self.t
        assert node.children is not None and node.offsets is not None
        if len(node.children[index].keys) >= t:
            return index
        if index > 0 and len(node.children[index - 1].keys) >= t:
            self._borrow_from_left(node, index)
            return index
        if index < len(node.children) - 1 and len(node.children[index + 1].keys) >= t:
            self._borrow_from_right(node, index)
            return index
        if index > 0:
            self._merge_children(node, index - 1)
            return index - 1
        self._merge_children(node, index)
        return index

    def _borrow_from_left(self, node: _BNode, index: int) -> None:
        assert node.children is not None and node.offsets is not None
        child = node.children[index]
        left = node.children[index - 1]
        child_offset = node.offsets[index]
        left_offset = node.offsets[index - 1]
        # Separator key moves down into child (rebased to child frame).
        child.keys.insert(0, node.keys[index - 1] - child_offset)
        child.values.insert(0, node.values[index - 1])
        if not child.leaf:
            assert child.children is not None and child.offsets is not None
            assert left.children is not None and left.offsets is not None
            moved = left.children.pop()
            moved_offset = left.offsets.pop()
            child.children.insert(0, moved)
            child.offsets.insert(0, moved_offset + left_offset - child_offset)
        # Left's max key moves up as the new separator (rebased to node).
        node.keys[index - 1] = left.keys.pop() + left_offset
        node.values[index - 1] = left.values.pop()
        left.refresh()
        child.refresh()

    def _borrow_from_right(self, node: _BNode, index: int) -> None:
        assert node.children is not None and node.offsets is not None
        child = node.children[index]
        right = node.children[index + 1]
        child_offset = node.offsets[index]
        right_offset = node.offsets[index + 1]
        child.keys.append(node.keys[index] - child_offset)
        child.values.append(node.values[index])
        if not child.leaf:
            assert child.children is not None and child.offsets is not None
            assert right.children is not None and right.offsets is not None
            moved = right.children.pop(0)
            moved_offset = right.offsets.pop(0)
            child.children.append(moved)
            child.offsets.append(moved_offset + right_offset - child_offset)
        node.keys[index] = right.keys.pop(0) + right_offset
        node.values[index] = right.values.pop(0)
        right.refresh()
        child.refresh()

    def _merge_children(self, node: _BNode, index: int) -> None:
        """Merge children[index], separator key, children[index+1]."""
        assert node.children is not None and node.offsets is not None
        left = node.children[index]
        right = node.children.pop(index + 1)
        left_offset = node.offsets[index]
        right_offset = node.offsets.pop(index + 1)
        rebase = right_offset - left_offset
        left.keys.append(node.keys.pop(index) - left_offset)
        left.values.append(node.values.pop(index))
        left.keys.extend(k + rebase for k in right.keys)
        left.values.extend(right.values)
        if not left.leaf:
            assert left.children is not None and left.offsets is not None
            assert right.children is not None and right.offsets is not None
            left.children.extend(right.children)
            left.offsets.extend(o + rebase for o in right.offsets)
        left.refresh()

    # -- internals: shift ---------------------------------------------------------

    def _shift(self, node: _BNode, key: float, delta: float, inclusive: bool) -> bool:
        """Apply the shift along the seam; returns True when key order
        was violated somewhere (negative deltas only)."""
        if inclusive:
            boundary = bisect.bisect_left(node.keys, key)
        else:
            boundary = bisect.bisect_right(node.keys, key)
        for index in range(boundary, len(node.keys)):
            node.keys[index] += delta
        violated = False
        if node.children is not None:
            assert node.offsets is not None
            for index in range(boundary + 1, len(node.children)):
                node.offsets[index] += delta
            violated = self._shift(
                node.children[boundary], key - node.offsets[boundary], delta, inclusive
            )
        node.refresh()
        if delta < 0 and not violated:
            violated = self._seam_violated(node, boundary)
        return violated

    @staticmethod
    def _seam_violated(node: _BNode, boundary: int) -> bool:
        """Order checks across the shift seam at this node."""
        if boundary < len(node.keys):
            if boundary > 0 and node.keys[boundary] <= node.keys[boundary - 1]:
                return True
            if node.children is not None:
                assert node.offsets is not None
                child_max = node.offsets[boundary] + node.children[boundary].max_rel
                if node.children[boundary].size and node.keys[boundary] <= child_max:
                    return True
        if boundary > 0 and node.children is not None:
            assert node.offsets is not None
            child = node.children[boundary]
            if child.size:
                child_min = node.offsets[boundary] + child.min_rel
                if child_min <= node.keys[boundary - 1]:
                    return True
        return False

    def _rebuild_merging(self) -> None:
        """O(n) fallback: collect items (merging equal keys by addition)
        and bulk-reload."""
        _SINK.inc("btree.shift_rebuilds")
        merged: dict[float, float] = {}
        for key, value in self.items():
            merged[key] = merged.get(key, 0) + value
        if self.prune_zeros:
            merged = {k: v for k, v in merged.items() if v != 0}
        self._root = _BNode()
        self._root.refresh()
        for key in sorted(merged):
            self._insert(key, merged[key], replace=True)

    # -- iteration / validation -----------------------------------------------------

    def _items(self, node: _BNode, base: float) -> Iterator[tuple[float, float]]:
        if node.leaf:
            for key, value in zip(node.keys, node.values):
                yield (base + key, value)
            return
        assert node.children is not None and node.offsets is not None
        for index, (key, value) in enumerate(zip(node.keys, node.values)):
            yield from self._items(node.children[index], base + node.offsets[index])
            yield (base + key, value)
        yield from self._items(node.children[-1], base + node.offsets[-1])

    def check_invariants(self) -> None:
        """Verify B-tree structure, key order over actual keys, cached
        sums/sizes/min/max, and uniform leaf depth."""
        depth = self._validate(self._root, 0, None, None, is_root=True)
        assert depth >= 0

    def _validate(
        self,
        node: _BNode,
        base: float,
        lo: float | None,
        hi: float | None,
        *,
        is_root: bool,
    ) -> int:
        t = self.t
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        assert len(node.keys) == len(node.values)
        actual_keys = [base + k for k in node.keys]
        assert actual_keys == sorted(set(actual_keys)), "key disorder"
        for key in actual_keys:
            assert lo is None or key > lo, "range violation"
            assert hi is None or key < hi, "range violation"
        expected_sum = sum(node.values)
        expected_size = len(node.keys)
        if node.leaf:
            depth = 0
        else:
            assert node.children is not None and node.offsets is not None
            assert len(node.children) == len(node.keys) + 1
            assert len(node.offsets) == len(node.children)
            depths = set()
            for index, child in enumerate(node.children):
                child_base = base + node.offsets[index]
                child_lo = actual_keys[index - 1] if index > 0 else lo
                child_hi = actual_keys[index] if index < len(actual_keys) else hi
                depths.add(
                    self._validate(child, child_base, child_lo, child_hi, is_root=False)
                )
                expected_sum += child.sum
                expected_size += child.size
            assert len(depths) == 1, "non-uniform leaf depth"
            depth = depths.pop() + 1
        assert node.sum == expected_sum, "sum cache stale"
        assert node.size == expected_size, "size cache stale"
        if node.size:
            all_keys = [k for k, _ in self._items(node, base)]
            assert base + node.min_rel == all_keys[0], "min cache stale"
            assert base + node.max_rel == all_keys[-1], "max cache stale"
        return depth


def _rebase(node: _BNode, offset: float) -> None:
    """Fold ``offset`` into a node's own frame (used on root collapse)."""
    if offset == 0:
        return
    node.keys = [k + offset for k in node.keys]
    if node.offsets is not None:
        node.offsets = [o + offset for o in node.offsets]
    node.refresh()


def _min_entry(node: _BNode) -> tuple[float, float]:
    """(key, value) of the subtree minimum, relative to node's frame."""
    base: float = 0
    while not node.leaf:
        assert node.children is not None and node.offsets is not None
        base += node.offsets[0]
        node = node.children[0]
    return base + node.keys[0], node.values[0]


def _max_entry(node: _BNode) -> tuple[float, float]:
    base: float = 0
    while not node.leaf:
        assert node.children is not None and node.offsets is not None
        base += node.offsets[-1]
        node = node.children[-1]
    return base + node.keys[-1], node.values[-1]
