"""A recursive-descent parser for the SQL subset the paper targets.

The grammar covers exactly the query class of Section 4.1: scalar and
grouped aggregate queries over joined base relations, with arithmetic
predicate operands that may contain (correlated) nested aggregate
subqueries, plus ``IN (SELECT ...)`` membership and ``HAVING`` for
TPC-H Q18.  String literals, qualified column references, and the five
aggregate functions are supported; anything else raises
:class:`~repro.errors.QueryParseError` with the offending offset.

Usage:
    >>> from repro.query.parser import parse_query
    >>> q = parse_query('''
    ...     SELECT SUM(b.price * b.volume) FROM bids b
    ...     WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
    ...         < (SELECT SUM(b2.volume) FROM bids b2
    ...            WHERE b2.price <= b.price)
    ... ''')
    >>> len(list(q.subqueries()))
    2
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryParseError
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    And,
    Arith,
    ColumnRef,
    Comparison,
    Const,
    Expr,
    InSubquery,
    Or,
    Predicate,
    RelationRef,
    SelectItem,
    SubqueryExpr,
)

__all__ = ["parse_query", "tokenize"]

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AND",
    "OR",
    "IN",
    "AS",
    "BETWEEN",
    "SUM",
    "COUNT",
    "AVG",
    "AVERAGE",
    "MIN",
    "MAX",
}

_AGGR_KEYWORDS = {"SUM", "COUNT", "AVG", "AVERAGE", "MIN", "MAX"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><>|<=|>=|=|<|>|\+|-|\*|/)
  | (?P<punct>[(),.])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | PUNCT | EOF
    text: str
    position: int


def tokenize(sql: str) -> list[_Token]:
    """Split SQL text into tokens; raises QueryParseError on junk."""
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise QueryParseError(f"unexpected character {sql[position]!r}", position)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "ident":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("KEYWORD", upper, match.start()))
            else:
                tokens.append(_Token("IDENT", text, match.start()))
        elif match.lastgroup == "number":
            tokens.append(_Token("NUMBER", text, match.start()))
        elif match.lastgroup == "string":
            tokens.append(_Token("STRING", text, match.start()))
        elif match.lastgroup == "op":
            tokens.append(_Token("OP", text, match.start()))
        else:
            tokens.append(_Token("PUNCT", text, match.start()))
    tokens.append(_Token("EOF", "", len(sql)))
    return tokens


class _Parser:
    """Cursor-based recursive-descent parser with cheap backtracking."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise QueryParseError(
                f"expected {wanted}, found {actual.text or 'end of input'!r}",
                actual.position,
            )
        return token

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> AggrQuery:
        query = self.query()
        self.expect("EOF")
        return query

    def query(self) -> AggrQuery:
        self.expect("KEYWORD", "SELECT")
        select = [self.select_item()]
        while self.accept("PUNCT", ","):
            select.append(self.select_item())
        self.expect("KEYWORD", "FROM")
        relations = [self.relation()]
        while self.accept("PUNCT", ","):
            relations.append(self.relation())
        where = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.predicate()
        group_by: list[ColumnRef] = []
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by.append(self.column_ref())
            while self.accept("PUNCT", ","):
                group_by.append(self.column_ref())
        having = None
        if self.accept("KEYWORD", "HAVING"):
            having = self.predicate()
        return AggrQuery(
            select=tuple(select),
            relations=tuple(relations),
            where=where,
            group_by=tuple(group_by),
            having=having,
        )

    def select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").text
        elif self.peek().kind == "IDENT":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def relation(self) -> RelationRef:
        name = self.expect("IDENT").text
        alias = name
        if self.peek().kind == "IDENT":
            alias = self.advance().text
        return RelationRef(name, alias)

    def column_ref(self) -> ColumnRef:
        first = self.expect("IDENT").text
        self.expect("PUNCT", ".")
        second = self.expect("IDENT").text
        return ColumnRef(first, second)

    # -- predicates -----------------------------------------------------------------

    def predicate(self) -> Predicate:
        left = self.and_predicate()
        while self.accept("KEYWORD", "OR"):
            left = Or(left, self.and_predicate())
        return left

    def and_predicate(self) -> Predicate:
        left = self.atomic_predicate()
        while self.accept("KEYWORD", "AND"):
            left = And(left, self.atomic_predicate())
        return left

    def atomic_predicate(self) -> Predicate:
        # '(' may open either a parenthesised boolean predicate or an
        # arithmetic/subquery operand; try the expression route first
        # and fall back to the boolean route on failure.
        if self.peek().kind == "PUNCT" and self.peek().text == "(":
            saved = self.index
            try:
                return self.comparison_or_in()
            except QueryParseError:
                self.index = saved
            self.expect("PUNCT", "(")
            inner = self.predicate()
            self.expect("PUNCT", ")")
            return inner
        return self.comparison_or_in()

    def comparison_or_in(self) -> Predicate:
        left = self.expr()
        if self.accept("KEYWORD", "IN"):
            self.expect("PUNCT", "(")
            sub = self.query()
            self.expect("PUNCT", ")")
            return InSubquery(left, sub)
        if self.accept("KEYWORD", "BETWEEN"):
            # Desugars to `lo <= e AND e <= hi`, so the AST stays within
            # the paper's grammar and printing round-trips.
            low = self.expr()
            self.expect("KEYWORD", "AND")
            high = self.expr()
            return And(Comparison("<=", low, left), Comparison("<=", left, high))
        op_token = self.peek()
        if op_token.kind == "OP" and op_token.text in {"=", "<>", "<", "<=", ">", ">="}:
            self.advance()
            right = self.expr()
            return Comparison(op_token.text, left, right)
        raise QueryParseError(
            f"expected comparison operator, found {op_token.text!r}",
            op_token.position,
        )

    # -- expressions ------------------------------------------------------------------

    def expr(self) -> Expr:
        left = self.term()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in {"+", "-"}:
                self.advance()
                left = Arith(token.text, left, self.term())
            else:
                return left

    def term(self) -> Expr:
        left = self.factor()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in {"*", "/"}:
                self.advance()
                left = Arith(token.text, left, self.factor())
            else:
                return left

    def factor(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "STRING":
            self.advance()
            return Const(token.text[1:-1].replace("''", "'"))
        if token.kind == "OP" and token.text == "-":
            self.advance()
            inner = self.factor()
            if isinstance(inner, Const) and isinstance(inner.value, (int, float)):
                return Const(-inner.value)
            return Arith("-", Const(0), inner)
        if token.kind == "KEYWORD" and token.text in _AGGR_KEYWORDS:
            return self.aggr_call()
        if token.kind == "PUNCT" and token.text == "(":
            self.advance()
            if self.peek().kind == "KEYWORD" and self.peek().text == "SELECT":
                sub = self.query()
                self.expect("PUNCT", ")")
                return SubqueryExpr(sub)
            inner = self.expr()
            self.expect("PUNCT", ")")
            return inner
        if token.kind == "IDENT":
            if self.peek(1).kind == "PUNCT" and self.peek(1).text == ".":
                return self.column_ref()
            raise QueryParseError(
                f"bare identifier {token.text!r}: columns must be qualified "
                "as alias.column",
                token.position,
            )
        raise QueryParseError(f"unexpected token {token.text!r}", token.position)

    def aggr_call(self) -> AggrCall:
        func = self.advance().text
        if func == "AVERAGE":
            func = "AVG"
        self.expect("PUNCT", "(")
        if func == "COUNT" and self.accept("OP", "*"):
            self.expect("PUNCT", ")")
            return AggrCall("COUNT", None)
        arg = self.expr()
        self.expect("PUNCT", ")")
        return AggrCall(func, arg)


def parse_query(sql: str) -> AggrQuery:
    """Parse SQL text into an :class:`~repro.query.ast.AggrQuery`.

    Raises:
        QueryParseError: with the byte offset of the first bad token.
    """
    return _Parser(sql).parse()
