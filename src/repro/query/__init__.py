"""Query front-end: AggrQ grammar AST, SQL parser, analysis, planner."""

from repro.query.analysis import (
    bound_columns,
    extract_pred_values,
    free_columns,
    is_correlated,
    is_streamable_query,
    nesting_depth,
    validate_query,
)
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    And,
    Arith,
    ColumnRef,
    Comparison,
    Const,
    Expr,
    InSubquery,
    Or,
    Predicate,
    RelationRef,
    SelectItem,
    SubqueryExpr,
)
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, Strategy, asymptotic_cost, classify

__all__ = [
    "parse_query",
    "classify",
    "QueryPlan",
    "Strategy",
    "asymptotic_cost",
    "AggrQuery",
    "AggrCall",
    "And",
    "Arith",
    "ColumnRef",
    "Comparison",
    "Const",
    "Expr",
    "InSubquery",
    "Or",
    "Predicate",
    "RelationRef",
    "SelectItem",
    "SubqueryExpr",
    "free_columns",
    "bound_columns",
    "extract_pred_values",
    "is_correlated",
    "is_streamable_query",
    "nesting_depth",
    "validate_query",
]
