"""Strategy planner: Section 4.3.1's "overhead of identification".

Given a parsed query, :func:`classify` pattern-matches it against the
shapes the paper's optimizations require and returns a
:class:`QueryPlan` saying *how* it should be incrementalized:

* ``UNCORRELATED`` — no correlated nested aggregates (TPC-H Q18): every
  subquery is independently maintainable and the outer result follows
  by point updates.
* ``PAI_EQUALITY`` — Section 2.1.3 / Algorithm 4 ``"="`` case: a single
  aggregate index with point key moves; O(1) per update (Example 2.1).
* ``RPAI_INEQUALITY`` — Section 2.2.3 / Algorithm 4 ``"<="`` case: a
  single aggregate index with range key shifts; O(log n) with an RPAI
  tree (VWAP).
* ``RPAI_CONJUNCTIVE`` — the multi-relation form of Section 4.3: a
  conjunction ``v1 θ q_R1 AND ... AND vn θ q_Rn`` with each ``q_Ri``
  correlated only on ``Ri``; one aggregate index per relation (MST,
  PSP).
* ``GENERAL`` — the Section 4.2 general algorithm (SQ1, SQ2).
* ``GENERAL_NESTED`` — multi-level nesting (NQ1, NQ2): delta-compute
  the inner view, then either feed the deltas into aggregate indexes
  (NQ1) or fall back to the general algorithm at the outer level (NQ2).

The checks run once per query ("during trigger generation") and are
linear in the query size — no exponential blow-up, matching the paper's
claim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import UnsupportedQueryError
from repro.query.analysis import (
    extract_pred_values,
    free_columns,
    is_correlated,
    is_streamable_query,
    nesting_depth,
    validate_query,
)
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    SubqueryExpr,
    walk_expr,
)

__all__ = [
    "Strategy",
    "QueryPlan",
    "IndexSpec",
    "classify",
    "asymptotic_cost",
    "preferred_backend",
    "codegen_key",
]


class Strategy(enum.Enum):
    UNCORRELATED = "uncorrelated"
    PAI_EQUALITY = "pai-equality"
    RPAI_INEQUALITY = "rpai-inequality"
    RPAI_CONJUNCTIVE = "rpai-conjunctive"
    RPAI_GROUPED = "rpai-grouped"
    GENERAL = "general"
    GENERAL_NESTED = "general-nested"


@dataclass(frozen=True)
class IndexSpec:
    """Everything an aggregate-index engine needs for one correlated
    predicate ``fixed_expr θ (SELECT agg(inner_arg) FROM R x WHERE
    inner_col θ' outer_col)``.

    Attributes:
        relation: base relation name the subquery ranges over.
        outer_alias: alias of the outer relation the subquery correlates
            with.
        outer_op: θ — comparison between the fixed side and the
            subquery value, normalized so the subquery is on the
            *right* (``fixed θ sub``).
        fixed_expr: the uncorrelated side (constant arithmetic over
            uncorrelated subqueries/constants).
        inner_func: SUM/COUNT/AVG.
        inner_arg: argument of the inner aggregate (None for COUNT(*)).
        inner_op: θ' of the correlated predicate, normalized so the
            *inner* column is on the left (``inner_col θ' outer_col``).
        inner_col: bound column (from the subquery's own relation).
        outer_col: free column (from the outer relation).
        extra_pairs: additional (inner_col, outer_col) equality pairs
            when the correlation is a conjunction of equalities
            (Section 4.3: "multiple conjunctive equality predicates
            (results in a single point update)").
    """

    relation: str
    outer_alias: str
    outer_op: str
    fixed_expr: Expr
    inner_func: str
    inner_arg: Expr | None
    inner_op: str
    inner_col: ColumnRef
    outer_col: ColumnRef
    extra_pairs: tuple[tuple[ColumnRef, ColumnRef], ...] = ()

    def column_pairs(self) -> tuple[tuple[ColumnRef, ColumnRef], ...]:
        """All (inner, outer) correlation column pairs."""
        return ((self.inner_col, self.outer_col), *self.extra_pairs)


@dataclass(frozen=True)
class QueryPlan:
    """Result of :func:`classify`."""

    strategy: Strategy
    query: AggrQuery
    index_specs: tuple[IndexSpec, ...] = field(default=())
    reason: str = ""

    def describe(self) -> str:
        lines = [f"strategy: {self.strategy.value}"]
        if self.reason:
            lines.append(f"reason: {self.reason}")
        for spec in self.index_specs:
            lines.append(
                f"  index on {spec.relation}: {spec.inner_func} keyed by "
                f"{spec.inner_col} {spec.inner_op} {spec.outer_col}, "
                f"probe {spec.outer_op} {spec.fixed_expr}"
            )
        return "\n".join(lines)


_EQ_OPS = {"="}
_INEQ_OPS = {"<", "<=", ">", ">="}


def classify(query: AggrQuery) -> QueryPlan:
    """Pattern-match ``query`` against the paper's optimization shapes.

    Raises:
        UnsupportedQueryError: only for queries outside the AggrQ class
            entirely (e.g. non-aggregate select lists).
    """
    validate_query(query)
    _require_aggregate(query)

    subqueries = extract_pred_values(query)
    correlated = [sub for sub in subqueries if is_correlated(sub)]

    if not correlated:
        return QueryPlan(
            Strategy.UNCORRELATED,
            query,
            reason="no correlated nested aggregates; every view is "
            "independently maintainable",
        )

    if any(nesting_depth(sub) >= 1 for sub in correlated):
        return QueryPlan(
            Strategy.GENERAL_NESTED,
            query,
            reason="correlated subquery itself contains nested aggregates "
            "(multi-level nesting)",
        )

    if not is_streamable_query(query):
        return QueryPlan(
            Strategy.GENERAL,
            query,
            reason="contains non-streamable aggregates (MIN/MAX); aggregate "
            "indexes cannot shift their values (Section 4.3.2)",
        )

    grouped = _match_grouped_threshold(query)
    if grouped is not None:
        return QueryPlan(
            Strategy.RPAI_GROUPED,
            query,
            index_specs=(grouped,),
            reason="outer column compared against an equality-correlated "
            "aggregate: one ordered index per correlation group (TPC-H "
            "Q17 shape, Section 5.2.2)",
        )

    specs = _match_conjunctive_shape(query)
    if specs is not None:
        if len(query.relations) == 1:
            spec = specs[0]
            if spec.inner_op in _EQ_OPS:
                strategy = Strategy.PAI_EQUALITY
            else:
                strategy = Strategy.RPAI_INEQUALITY
            return QueryPlan(strategy, query, index_specs=tuple(specs))
        return QueryPlan(
            Strategy.RPAI_CONJUNCTIVE, query, index_specs=tuple(specs)
        )

    return QueryPlan(
        Strategy.GENERAL,
        query,
        reason="correlated nested aggregate does not match the aggregate-"
        "index shape of Section 4.3 (falling back to the general algorithm)",
    )


def _require_aggregate(query: AggrQuery) -> None:
    has_aggregate = any(
        isinstance(node, AggrCall)
        for item in query.select
        for node in walk_expr(item.expr)
    )
    if not has_aggregate:
        raise UnsupportedQueryError(
            "only aggregate queries are supported (select list has no "
            "aggregate function)"
        )


def _match_conjunctive_shape(query: AggrQuery) -> list[IndexSpec] | None:
    """Match ``v1 θ q_R1 AND ... AND vn θ q_Rn`` (Section 4.3).

    Requirements: one conjunct per relation with a correlated subquery
    correlated *only* on that relation's columns; each subquery is a
    single-relation single-aggregate query whose predicate compares a
    bare bound column with a bare free column.  Returns None when the
    query does not match.
    """
    conjuncts = query.conjuncts()
    if not conjuncts or len(conjuncts) != len(query.relations):
        return None
    specs: list[IndexSpec] = []
    seen_aliases: set[str] = set()
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            return None
        spec = _match_index_predicate(query, conjunct)
        if spec is None:
            return None
        if spec.outer_alias in seen_aliases:
            return None
        seen_aliases.add(spec.outer_alias)
        specs.append(spec)
    return specs


def _match_index_predicate(query: AggrQuery, pred: Comparison) -> IndexSpec | None:
    """Match one conjunct of the form ``fixed θ correlated-subquery``
    (either operand order), returning its IndexSpec or None."""
    left_sub = _sole_correlated_subquery(pred.left)
    right_sub = _sole_correlated_subquery(pred.right)
    if (left_sub is None) == (right_sub is None):
        return None  # need exactly one correlated side
    if right_sub is not None:
        outer_op, fixed_expr, sub = pred.op, pred.left, right_sub
    else:
        flipped = pred.flipped()
        outer_op, fixed_expr, sub = flipped.op, flipped.left, left_sub
    if _contains_correlated_subquery(fixed_expr):
        return None
    # The correlated side must be the bare subquery (no arithmetic
    # wrapping), otherwise shifted keys would need rescaling.
    bare = pred.right if right_sub is not None else pred.left
    if not isinstance(bare, SubqueryExpr):
        return None

    if len(sub.relations) != 1 or sub.group_by or sub.having is not None:
        return None
    if len(sub.select) != 1:
        return None
    inner_agg = sub.select[0].expr
    if not isinstance(inner_agg, AggrCall) or not inner_agg.streamable:
        return None

    free = free_columns(sub)
    if not free:
        return None
    outer_aliases = {ref.relation for ref in free}
    if len(outer_aliases) != 1:
        return None
    (outer_alias,) = outer_aliases
    # Correlates with exactly one of this query's relations.
    if outer_alias not in query.aliases:
        return None

    inner_alias = sub.relations[0].alias
    inner_conjuncts = sub.conjuncts()
    if not inner_conjuncts:
        return None

    pairs: list[tuple[str, ColumnRef, ColumnRef]] = []
    for conjunct in inner_conjuncts:
        if not isinstance(conjunct, Comparison):
            return None
        for ref in free:
            spec_op, inner_col = _match_symmetric_columns(conjunct, inner_alias, ref)
            if spec_op is not None and inner_col is not None:
                pairs.append((spec_op, inner_col, ref))
                break
        else:
            return None
    if len(pairs) != len(inner_conjuncts):
        return None

    if len(pairs) == 1:
        spec_op, inner_col, outer_col = pairs[0]
    else:
        # Multiple conjunctive predicates only work as a single point
        # update when every one is an equality (Section 4.3).
        if any(op != "=" for op, _, _ in pairs):
            return None
        spec_op, inner_col, outer_col = pairs[0]

    return IndexSpec(
        relation=sub.relations[0].name,
        outer_alias=outer_alias,
        outer_op=outer_op,
        fixed_expr=fixed_expr,
        inner_func=inner_agg.func,
        inner_arg=inner_agg.arg,
        inner_op=spec_op,
        inner_col=inner_col,
        outer_col=outer_col,
        extra_pairs=tuple((ic, oc) for _, ic, oc in pairs[1:]),
    )


def _match_grouped_threshold(query: AggrQuery) -> IndexSpec | None:
    """Match the TPC-H Q17 shape: some conjunct compares a *bare outer
    column* against a correlated subquery whose own predicate is an
    equality correlation (``l.quantity < (SELECT ... WHERE l2.partkey =
    p.partkey)``).  The engine then keeps one ordered index per
    correlation group, probed with the group's (changing) aggregate.

    Remaining conjuncts must be subquery-free (joins and constant
    filters), which the engines handle directly.
    """
    conjuncts = query.conjuncts()
    target: Comparison | None = None
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            return None
        has_sub = _contains_correlated_subquery(conjunct.left) or (
            _contains_correlated_subquery(conjunct.right)
        )
        if has_sub:
            if target is not None:
                return None
            target = conjunct
    if target is None:
        return None

    # Normalize so the subquery is on the right.
    if isinstance(target.right, SubqueryExpr):
        column_side, op, sub_expr = target.left, target.op, target.right
    elif isinstance(target.left, SubqueryExpr):
        flipped = target.flipped()
        column_side, op, sub_expr = flipped.left, flipped.op, flipped.right
    else:
        return None
    if not isinstance(column_side, ColumnRef) or op in _EQ_OPS:
        return None
    assert isinstance(sub_expr, SubqueryExpr)
    sub = sub_expr.query

    if len(sub.relations) != 1 or sub.group_by or sub.having is not None:
        return None
    if len(sub.select) != 1:
        return None
    aggs = [
        node
        for node in walk_expr(sub.select[0].expr)
        if isinstance(node, AggrCall)
    ]
    if len(aggs) != 1 or not aggs[0].streamable:
        return None

    free = free_columns(sub)
    if len(free) != 1:
        return None
    (outer_col,) = free
    inner_pred = sub.where
    if not isinstance(inner_pred, Comparison) or inner_pred.op != "=":
        return None
    inner_alias = sub.relations[0].alias
    spec_op, inner_col = _match_symmetric_columns(inner_pred, inner_alias, outer_col)
    if spec_op != "=" or inner_col is None:
        return None

    return IndexSpec(
        relation=sub.relations[0].name,
        outer_alias=column_side.relation,
        outer_op=op,
        fixed_expr=column_side,
        inner_func=aggs[0].func,
        inner_arg=aggs[0].arg,
        inner_op="=",
        inner_col=inner_col,
        outer_col=outer_col,
    )


def _match_symmetric_columns(
    pred: Comparison, inner_alias: str, outer_col: ColumnRef
) -> tuple[str | None, ColumnRef | None]:
    """Require ``inner.c θ outer.c`` with bare columns on both sides
    (SQ2's asymmetric arithmetic fails here, sending it to the general
    algorithm exactly as in the paper)."""
    left, right, op = pred.left, pred.right, pred.op
    if isinstance(left, ColumnRef) and left.relation == inner_alias and right == outer_col:
        return op, left
    if isinstance(right, ColumnRef) and right.relation == inner_alias and left == outer_col:
        return Comparison(op, left, right).flipped().op, right
    return None, None


def _sole_correlated_subquery(expr: Expr) -> AggrQuery | None:
    """The unique correlated subquery inside ``expr`` (None if zero or
    several)."""
    found = [
        node.query
        for node in walk_expr(expr)
        if isinstance(node, SubqueryExpr) and is_correlated(node.query)
    ]
    return found[0] if len(found) == 1 else None


def _contains_correlated_subquery(expr: Expr) -> bool:
    return any(
        isinstance(node, SubqueryExpr) and is_correlated(node.query)
        for node in walk_expr(expr)
    )


#: Per-update asymptotic cost by strategy, for Table 1 reporting.
_COSTS = {
    Strategy.UNCORRELATED: "O(1)",
    Strategy.PAI_EQUALITY: "O(1)",
    Strategy.RPAI_INEQUALITY: "O(log n)",
    Strategy.RPAI_CONJUNCTIVE: "O(log n)",
    Strategy.RPAI_GROUPED: "O(log n)",
    Strategy.GENERAL: "O(n)",
    Strategy.GENERAL_NESTED: "O(n log n)",
}


def asymptotic_cost(plan: QueryPlan) -> str:
    """Human-readable per-update complexity of the chosen strategy."""
    return _COSTS[plan.strategy]


def preferred_backend(plan: QueryPlan) -> str:
    """Which aggregate-index backend the plan's shape permits.

    ``"adaptive"`` — the plan never shifts aggregate-index keys
    (equality-θ correlation: every update is a point move), so the
    engine can start on the dense Fenwick backend and fall back to an
    RPAI tree only if the data forces it
    (:class:`~repro.core.adaptive.AdaptiveIndex`).

    ``"rpai"`` — ``shift_keys`` is on the hot path (inequality-θ), or
    the strategy manages its own structures; the relative-key tree is
    the only backend that shifts in O(log n).
    """
    if plan.strategy is Strategy.PAI_EQUALITY:
        return "adaptive"
    return "rpai"


@dataclass(frozen=True)
class BackendChoice:
    """Result of :func:`choose_backend`.

    Attributes:
        spec: backend spec string for
            :class:`~repro.core.backends.BackendFactory` — either a raw
            backend name or ``"adaptive:<dense>-><sparse>"``.
        backend: the model name of the backend the role *starts* on
            (for adaptive specs, the dense member).
        label: the op-mix label the ranking used (``"point-heavy"``,
            ``"prefix-heavy"``, ``"shift-heavy"``, ``"mixed"``).
        ranking: ``(predicted µs/event, name)`` cheapest-first over the
            candidates considered.
    """

    spec: str
    backend: str
    label: str
    ranking: tuple[tuple[float, str], ...]

    def factory(self):
        from repro.core.backends import BackendFactory

        return BackendFactory(self.spec)


def plan_profile(plan: QueryPlan) -> tuple[dict[str, float], str]:
    """The plan's static per-event op mix ``(profile, label)``.

    Weights are ops per event on the aggregate index: an equality-θ
    point engine does two point moves (retract + re-insert of the
    group's aggregate) and one result probe, whose kind depends on the
    outer comparison (``=`` probes with a point get, an inequality with
    a prefix sum).  Inequality-θ range engines do one ``shift_keys``,
    one point add and one prefix probe per event.  ``n`` is a nominal
    live-entry count for the curves; rankings are insensitive to it
    within an order of magnitude (the runtime re-decision uses the
    real one).
    """
    if plan.strategy is Strategy.PAI_EQUALITY:
        spec = plan.index_specs[0] if plan.index_specs else None
        if spec is not None and spec.outer_op in _EQ_OPS:
            return {"n": 512, "add": 2.0, "get": 1.0}, "point-heavy"
        return {"n": 512, "add": 2.0, "get_sum": 1.0}, "prefix-heavy"
    if plan.strategy in (
        Strategy.RPAI_INEQUALITY,
        Strategy.RPAI_CONJUNCTIVE,
        Strategy.RPAI_GROUPED,
    ):
        return {"n": 512, "add": 1.0, "shift_keys": 1.0, "get_sum": 1.0}, "shift-heavy"
    return {"n": 512, "add": 1.0, "get_sum": 1.0}, "mixed"


def choose_backend(plan: QueryPlan, profile: dict[str, float] | None = None, *, model=None) -> BackendChoice:
    """Rank the candidate backends for ``plan``'s op mix and pick one.

    The successor of :func:`preferred_backend`: instead of the
    hard-coded two-way rule, every aggregate-index role is priced
    against the fitted cost model (:mod:`repro.core.costmodel`).

    Candidate sets per role shape:

    * **Point roles** (equality-θ — never shift): all five substrates.
      If a dense positional backend (Fenwick/segment) wins, it is
      wrapped in :class:`~repro.core.adaptive.AdaptiveIndex` with the
      best sparse backend as its guard fallback, because point-role
      keys are *aggregate values* and may turn out fractional or
      huge; a sparse winner (e.g. the dict for point-probe roles) is
      used raw — it handles every key, so no guard is needed.
    * **Range roles** (inequality-θ and conjunctive — ``shift_keys``
      on the hot path): only the relative-key trees
      {``rpai``, ``rpai_btree``}.  The positional backends shift in
      O(U) over a *bounded* universe that RPAI's unbounded relative
      keys escape immediately, and the dict shifts in O(n) — not
      priced out by the model but structurally unable to keep the
      engine's O(log n) per-update bound, so they are excluded a
      priori.
    * Every other strategy manages its own structures → ``"rpai"``.
    """
    from repro.core import costmodel

    model = model or costmodel.get_model()
    default_profile, label = plan_profile(plan)
    if profile is None:
        profile = default_profile
    if plan.strategy is Strategy.PAI_EQUALITY:
        ranking = tuple(model.rank(profile, costmodel.CANDIDATE_BACKENDS))
        winner = ranking[0][1]
        sparse_rank = [name for _, name in ranking if name in ("rpai", "rpai_btree", "paimap")]
        if winner in ("fenwick", "segment"):
            spec = f"adaptive:{winner}->{sparse_rank[0]}"
        else:
            spec = winner
        return BackendChoice(spec=spec, backend=winner, label=label, ranking=ranking)
    if plan.strategy in (
        Strategy.RPAI_INEQUALITY,
        Strategy.RPAI_CONJUNCTIVE,
        Strategy.RPAI_GROUPED,
    ):
        ranking = tuple(model.rank(profile, ("rpai", "rpai_btree")))
        winner = ranking[0][1]
        return BackendChoice(spec=winner, backend=winner, label=label, ranking=ranking)
    return BackendChoice(spec="rpai", backend="rpai", label=label, ranking=())


def codegen_key(plan: QueryPlan, backend: str) -> tuple:
    """Cache key of a specialized trigger for ``plan`` on ``backend``.

    The key pins everything the generated source depends on: the
    strategy (which engine shape the emitter targets), the full query
    AST (frozen dataclasses — predicates, extractors, and, through the
    relation references, the schema roles), and the live backend flavor
    (the :class:`~repro.core.adaptive.AdaptiveIndex` branch is resolved
    at compile time, so a Fenwick-resident index and a migrated one
    compile to different triggers).  Two engines over the same
    (query, backend) pair therefore share one compiled code object —
    shard replicas hit the cache built by the template engine.
    """
    return (plan.strategy.value, plan.query, backend)
