"""AST for the AggrQ grammar of paper Section 4.1.

The paper represents the supported query class with a compact grammar::

    AggrQ      -> Aggr[cols](AggrFunc, Relations, Predicates)
    AggrFunc   -> AggrFunc op AggrFunc
    AggrFunc   -> (SUM|COUNT|AVERAGE|MIN|MAX) f(cols)
    Relations  -> Relation | Relation, Relations      Relation -> Q | R
    Predicates -> Predicate | Predicate (AND|OR) Predicate
    Predicate  -> Value θ Value         θ  -> > | >= | < | <= | =
    Value      -> Value op Value        op -> + | - | * | /
    Value      -> Const | Col | Aggr[](AggrFunc, Relations, Predicates)

This module mirrors that grammar with frozen dataclasses.  Nested
aggregate subqueries appear as :class:`SubqueryExpr` nodes inside
predicate operands; ``IN (SELECT ...)`` membership (needed for TPC-H
Q18) is the one extension beyond the paper's grammar, modelled as
:class:`InSubquery`.

All nodes are immutable and hashable, so analyses can memoise on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "Expr",
    "Const",
    "ColumnRef",
    "Arith",
    "AggrCall",
    "SubqueryExpr",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "InSubquery",
    "RelationRef",
    "SelectItem",
    "AggrQuery",
    "STREAMABLE_AGGREGATES",
    "AGGREGATE_FUNCTIONS",
    "COMPARISON_OPS",
    "walk_expr",
    "walk_predicates",
]

AGGREGATE_FUNCTIONS = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX"})

#: Aggregates maintainable from (current value, delta) alone — the
#: "streamable" monoids of Section 4.2.5.  MIN/MAX are excluded: their
#: value cannot be recovered after a deletion without extra structure.
STREAMABLE_AGGREGATES = frozenset({"SUM", "COUNT", "AVG"})

COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for value expressions (the grammar's ``Value``)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A numeric or string literal."""

    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A qualified column reference ``alias.column``."""

    relation: str
    column: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.column}"


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic over values: ``left op right``."""

    op: str  # one of + - * /
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggrCall(Expr):
    """An aggregate function application, e.g. ``SUM(b.price * b.volume)``.

    ``arg`` is None for ``COUNT(*)``.
    """

    func: str
    arg: Expr | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise ValueError(f"{self.func} requires an argument")

    @property
    def streamable(self) -> bool:
        return self.func in STREAMABLE_AGGREGATES

    def __str__(self) -> str:
        return f"{self.func}({self.arg if self.arg is not None else '*'})"


@dataclass(frozen=True)
class SubqueryExpr(Expr):
    """A scalar nested aggregate subquery used as a value."""

    query: "AggrQuery"

    def __str__(self) -> str:
        return f"({self.query})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for boolean predicates."""

    __slots__ = ()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left θ right`` with θ in =, <>, <, <=, >, >=."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def flipped(self) -> "Comparison":
        """The same predicate with operands swapped (``a < b`` -> ``b > a``)."""
        flip = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Comparison(flip[self.op], self.right, self.left)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class InSubquery(Predicate):
    """``expr IN (SELECT ... GROUP BY ... HAVING ...)`` membership."""

    expr: Expr
    query: "AggrQuery"

    def __str__(self) -> str:
        return f"{self.expr} IN ({self.query})"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationRef:
    """A base relation in a FROM clause with its alias."""

    name: str
    alias: str

    def __str__(self) -> str:
        return self.name if self.name == self.alias else f"{self.name} {self.alias}"


@dataclass(frozen=True)
class SelectItem:
    """One projected expression, optionally named."""

    expr: Expr
    alias: str | None = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class AggrQuery:
    """An aggregate query: the grammar's ``AggrQ``.

    Attributes:
        select: projected expressions (aggregates and/or group-by
            columns).
        relations: joined base relations.
        where: predicate tree (None = no predicate).
        group_by: grouping columns (empty = scalar aggregate).
        having: post-grouping predicate (used by TPC-H Q18's inner
            query).
    """

    select: tuple[SelectItem, ...]
    relations: tuple[RelationRef, ...]
    where: Predicate | None = None
    group_by: tuple[ColumnRef, ...] = field(default=())
    having: Predicate | None = None

    def __post_init__(self) -> None:
        aliases = [r.alias for r in self.relations]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate relation alias in {aliases}")

    # -- convenience accessors -------------------------------------------------

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset(r.alias for r in self.relations)

    def alias_to_name(self) -> dict[str, str]:
        return {r.alias: r.name for r in self.relations}

    def is_scalar(self) -> bool:
        """True when the query returns a single aggregate row."""
        return not self.group_by

    def direct_expressions(self) -> Iterator[Expr]:
        """Expressions belonging to this query level (select, where,
        group by, having) — subqueries are yielded as SubqueryExpr
        nodes, not expanded."""
        for item in self.select:
            yield item.expr
        if self.where is not None:
            yield from _predicate_exprs(self.where)
        yield from self.group_by
        if self.having is not None:
            yield from _predicate_exprs(self.having)

    def subqueries(self) -> Iterator["AggrQuery"]:
        """Immediate child subqueries (one level)."""
        for expr in self.direct_expressions():
            for node in walk_expr(expr):
                if isinstance(node, SubqueryExpr):
                    yield node.query
        if self.where is not None:
            for pred in walk_predicates(self.where):
                if isinstance(pred, InSubquery):
                    yield pred.query
        if self.having is not None:
            for pred in walk_predicates(self.having):
                if isinstance(pred, InSubquery):
                    yield pred.query

    def conjuncts(self) -> list[Predicate]:
        """The WHERE clause flattened over top-level ANDs."""
        if self.where is None:
            return []
        return _flatten_and(self.where)

    def to_aggrq_notation(self) -> str:
        """Render in the paper's ``Agg[cols](func, rels, preds)`` form."""
        cols = ", ".join(str(c) for c in self.group_by)
        funcs = ", ".join(str(i.expr) for i in self.select)
        rels = ", ".join(str(r) for r in self.relations)
        preds = str(self.where) if self.where is not None else "∅"
        return f"Agg[{cols}]({funcs}, ({rels}), {preds})"

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(i) for i in self.select)]
        parts.append("FROM " + ", ".join(str(r) for r in self.relations))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, *without* descending
    into nested subqueries (SubqueryExpr is yielded as a leaf)."""
    yield expr
    if isinstance(expr, Arith):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, AggrCall) and expr.arg is not None:
        yield from walk_expr(expr.arg)


def walk_predicates(pred: Predicate) -> Iterator[Predicate]:
    """Yield ``pred`` and every nested predicate node."""
    yield pred
    if isinstance(pred, (And, Or)):
        yield from walk_predicates(pred.left)
        yield from walk_predicates(pred.right)


def _predicate_exprs(pred: Predicate) -> Iterator[Expr]:
    for node in walk_predicates(pred):
        if isinstance(node, Comparison):
            yield node.left
            yield node.right
        elif isinstance(node, InSubquery):
            yield node.expr


def _flatten_and(pred: Predicate) -> list[Predicate]:
    if isinstance(pred, And):
        return _flatten_and(pred.left) + _flatten_and(pred.right)
    return [pred]
