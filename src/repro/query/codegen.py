"""Per-query trigger codegen: compile (query, backend) pairs to
specialized Python triggers.

The interpreted engines pay a per-event tax that has nothing to do with
the index kernels PR 3 made fast: closure chains compiled from the AST
(`_compile_row_expr`), dict-dispatched comparators (``operator.le``
behind ``_COMPARATORS``), aggregate dispatch on ``func`` strings, and —
for the adaptive backend — a dense-key re-check inside every
``AdaptiveIndex.add``.  DBToaster's lesson (PAPERS.md) is that an IVM
system earns its constant factors by *compiling* each query's trigger;
this module does exactly that for **every registry engine**:

* predicate tests become plain comparisons (``_k <= _g``),
* bound-variable extractors become direct row indexing (``_row['A']``),
* aggregate dispatch is monomorphized (a SUM scalar is ``.total``),
* the :class:`~repro.core.adaptive.AdaptiveIndex` backend branch is
  resolved at compile time: dense-int keys hit the Fenwick array
  directly, anything else falls through to the interpreted
  ``AdaptiveIndex.add`` (which migrates with its usual counters) and
  the trigger **deopts** back to the interpreted class methods at the
  end of the invocation (see :func:`repro.query.codegen_runtime.deopt`),
* the grouped engine's per-group loop hoists the group-key extraction
  and shift prologue and monomorphizes the index dispatch per backend
  flavor (the dense variants deopt if *any* group migrates),
* the conjunctive engine's per-relation factor-sum recombination is
  unrolled across the decomposition's terms at compile time,
* the hand-specialized engines (PSP, NQ1, NQ2, Q17, Q18) get their
  trigger bodies recompiled with the stable structures *and their
  bound methods* pre-bound as globals (Q18 additionally inlines and
  branch-specializes its refresh helper),
* compiled point/range/grouped engines get a generated columnar
  ``on_frame`` netting path (bail-before-mutate, same deopt guard) —
  the hand-written frame overrides are gone.

Generated source is ``compile()``'d once and cached per
``(engine class, query AST, backend)`` key — the AST nodes are frozen
dataclasses, so the key is hashable and exact.  Installation binds the
compiled functions as *instance* attributes (``engine.on_event`` /
``engine.on_batch``); the class-level interpreted triggers remain
untouched and serve as the deopt target.  The generated bodies
replicate the interpreted triggers' operation order and obs-counter
sites bit-for-bit: the differential suite asserts identical result
traces *and* identical rotation/probe counters, and the chaos/sharding
harnesses run unchanged because the quarantine prologue, WAL wrapping
(instance attributes are looked up per call) and the
``shard_partial``/``shard_probe`` class methods are preserved.

Engines pickle through their explicit ``__getstate__`` (pure data), so
compiled triggers never enter a snapshot; ``__setstate__`` re-installs
them, which is how codegen'd triggers survive the multiprocess workers'
``pickle.loads`` restore path.
"""

from __future__ import annotations

import os
import time
import types
from typing import Any, Callable

from repro.core.adaptive import MAX_DENSE_KEY, AdaptiveIndex
from repro.engine.aggr_index import (
    GroupedRangeIndexEngine,
    PointIndexEngine,
    RangeIndexEngine,
)
from repro.engine.conjunctive import ConjunctiveIndexEngine
from repro.engine.general import GeneralAlgorithmEngine, _peel_constant_scale
from repro.engine.queries.nq import NQ1RpaiEngine, NQ2RpaiEngine
from repro.engine.queries.psp import PSPRpaiEngine
from repro.engine.queries.tpch import Q17RpaiEngine, Q18RpaiEngine
from repro.obs import SINK as _SINK
from repro.query import codegen_runtime as _rt
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    Arith,
    ColumnRef,
    Comparison,
    Const,
    Expr,
    SubqueryExpr,
    walk_expr,
)
from repro.query.planner import codegen_key

__all__ = [
    "codegen_enabled",
    "set_codegen",
    "maybe_specialize",
    "specialize",
    "uninstall",
    "generated_source",
    "clear_cache",
    "UnsupportedTriggerError",
]


class UnsupportedTriggerError(Exception):
    """The engine/query shape has no specialized trigger emitter."""


def _env_default() -> bool:
    return os.environ.get("REPRO_CODEGEN", "1").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


#: Process-wide default, initialized from ``REPRO_CODEGEN`` (on unless
#: explicitly disabled).  Multiprocess shard workers inherit it via
#: fork, and the CLI's ``--no-codegen`` flips it (plus the env var, for
#: spawn-started children).
_ENABLED = _env_default()


def codegen_enabled() -> bool:
    return _ENABLED


def set_codegen(flag: bool) -> None:
    """Flip the process-wide codegen default (the CLI escape hatch)."""
    global _ENABLED
    _ENABLED = bool(flag)


class _Entry:
    __slots__ = ("key", "source", "code")

    def __init__(self, key: tuple, source: str, code: Any) -> None:
        self.key = key
        self.source = source
        self.code = code


#: key -> _Entry (or the _UNSUPPORTED sentinel for negative caching).
_CACHE: dict[tuple, Any] = {}
_UNSUPPORTED = object()


def clear_cache() -> None:
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Expression emitters
# ---------------------------------------------------------------------------


def _emit_row_expr(expr: Expr | None, alias: str, row: str) -> str:
    """Source for a single-row expression, mirroring the closure
    semantics of :func:`repro.engine.general._compile_row_expr` (same
    operators, same evaluation order)."""
    if expr is None:
        return "1"
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.relation != alias:
            raise UnsupportedTriggerError(f"column {expr} is not of alias {alias!r}")
        return f"{row}[{expr.column!r}]"
    if isinstance(expr, Arith):
        left = _emit_row_expr(expr.left, alias, row)
        right = _emit_row_expr(expr.right, alias, row)
        return f"({left} {expr.op} {right})"
    raise UnsupportedTriggerError(f"cannot emit row expression {expr!r}")


def _scalar_value_src(name: str, func: str) -> str:
    """Inline read of an ``_UncorrelatedScalar`` bound as global
    ``name`` — monomorphized on the aggregate function, matching
    ``_MaintainedAggregate.value`` exactly."""
    if func == "SUM":
        return f"{name}.aggregate.total"
    if func == "COUNT":
        return f"{name}.aggregate.count"
    if func == "AVG":
        return (
            f"({name}.aggregate.total / {name}.aggregate.count "
            f"if {name}.aggregate.count else 0)"
        )
    return f"{name}.value()"  # MIN/MAX: MinMaxView lookup stays a call


class _ScalarInfo:
    """Static description of one uncorrelated scalar subquery."""

    __slots__ = ("name", "func", "relation", "arg_src")

    def __init__(self, name: str, sub: AggrQuery) -> None:
        call = sub.select[0].expr
        if not isinstance(call, AggrCall):  # _UncorrelatedScalar enforces this
            raise UnsupportedTriggerError(f"unsupported scalar select {call}")
        self.name = name
        self.func = call.func
        self.relation = sub.relations[0].name
        alias = sub.relations[0].alias
        self.arg_src = _emit_row_expr(call.arg, alias, "_row")


def _scalar_infos(scalars: dict[AggrQuery, Any]) -> dict[AggrQuery, _ScalarInfo]:
    return {
        sub: _ScalarInfo(f"_sc{i}", sub) for i, sub in enumerate(scalars)
    }


def _emit_scalar_updates(
    lines: list[str], indent: str, infos: dict[AggrQuery, _ScalarInfo]
) -> None:
    """Per-event scalar routing, streamed exactly like the interpreted
    loop over ``_scalars.items()`` (value computed, then ``update``)."""
    for i, info in enumerate(infos.values()):
        lines.append(f"{indent}if _rel == {info.relation!r}:")
        if info.func in ("SUM", "COUNT", "AVG"):
            acc = f"_a{i}"
            lines.append(f"{indent}    {acc} = {info.name}.aggregate")
            lines.append(f"{indent}    {acc}.total += ({info.arg_src}) * _w")
            lines.append(f"{indent}    {acc}.count += _w")
        else:
            lines.append(f"{indent}    {info.name}.on_row(_row, _w)")


def _emit_fixed_expr(expr: Expr, infos: dict[AggrQuery, _ScalarInfo]) -> str:
    """The fixed probe side ``v``: constants, arithmetic and scalar
    subquery reads (mirrors ``_FixedSide.value``)."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Arith):
        left = _emit_fixed_expr(expr.left, infos)
        right = _emit_fixed_expr(expr.right, infos)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, SubqueryExpr):
        info = infos[expr.query]
        return _scalar_value_src(info.name, info.func)
    raise UnsupportedTriggerError(f"cannot emit fixed expression {expr!r}")


def _probe_src(op: str, index: str, probe: str) -> str:
    """Monomorphized ``_probe`` dispatch (repro.engine.aggr_index)."""
    if op == "=":
        return f"{index}.get({probe}, 0)"
    if op == "<":
        return f"({index}.total_sum() - {index}.get_sum({probe}, inclusive=True))"
    if op == "<=":
        return f"({index}.total_sum() - {index}.get_sum({probe}, inclusive=False))"
    if op == ">":
        return f"{index}.get_sum({probe}, inclusive=False)"
    if op == ">=":
        return f"{index}.get_sum({probe}, inclusive=True)"
    raise UnsupportedTriggerError(f"unsupported probe operator {op!r}")


# ---------------------------------------------------------------------------
# Adaptive dense (Fenwick / segment) fast path
# ---------------------------------------------------------------------------

# Flavors that monomorphize the AdaptiveIndex dense fast path.  Both
# dense substrates share the contract the emitted code relies on:
# ``.add(int_key, delta)`` on in-universe keys, ``.capacity``, and the
# wrapper's ``_ensure_capacity`` growth hook.
_DENSE_FLAVORS = frozenset({"fenwick", "segment"})

_DENSE_PROLOGUE = ["_dense = _ai._dense", "_fw = _ai._backend"]


def _emit_index_add(
    lines: list[str], indent: str, flavor: str, key: str, delta: str
) -> None:
    """One ``aggr_index.add(key, delta)``.

    The dense flavors resolve the AdaptiveIndex backend branch at
    compile time: plain in-range ints hit the dense array directly
    (the common case for equality-correlation keys); anything else
    falls through to the full ``AdaptiveIndex.add`` — which handles
    bools, int-valued floats, migration and re-decisions with
    identical counters — and refreshes the hoisted backend locals.
    ``key`` must be a local name (it is evaluated more than once).
    """
    if flavor in _DENSE_FLAVORS:
        lines.append(
            f"{indent}if _dense and type({key}) is int "
            f"and 0 <= {key} < {MAX_DENSE_KEY}:"
        )
        lines.append(f"{indent}    if {key} >= _fw.capacity:")
        lines.append(f"{indent}        _ai._ensure_capacity({key})")
        lines.append(f"{indent}    _fw.add({key}, {delta})")
        lines.append(f"{indent}else:")
        lines.append(f"{indent}    _ai.add({key}, {delta})")
        lines.append(f"{indent}    _dense = _ai._dense")
        lines.append(f"{indent}    _fw = _ai._backend")
    else:
        lines.append(f"{indent}_ai.add({key}, {delta})")


def _emit_deopt_check(lines: list[str], indent: str, flavor: str) -> None:
    if flavor in _DENSE_FLAVORS:
        lines.append(f"{indent}if not _ai._dense:")
        lines.append(f"{indent}    _deopt(self, 'backend_migrated')")


def _backend_flavor(index: Any) -> str:
    if isinstance(index, AdaptiveIndex):
        # Monomorphize on the *live* backend: dense flavors get the
        # inline fast path; a sparse adaptive compiles through the
        # wrapper (re-decisions may swap sparse substrates behind it).
        return index._name if index._dense else f"adaptive-{index._name}"
    return type(index).__name__.lower()


# ---------------------------------------------------------------------------
# Generated columnar on_frame (the netting fast path over ColumnBlocks)
# ---------------------------------------------------------------------------


def _emit_col_element(expr: Expr | None, alias: str, cols: dict[str, str]) -> str:
    """Element-``_i`` source of a row expression evaluated off typed
    columns: per element it computes exactly what
    :func:`_emit_row_expr`'s source computes for the corresponding row
    (same operators, same evaluation order).  Column fetches are
    deduplicated into ``cols`` (column name -> hoisted local), so the
    caller hoists each ``block.column(name)`` once per block."""
    if expr is None:
        return "1"
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.relation != alias:
            raise UnsupportedTriggerError(f"column {expr} is not of alias {alias!r}")
        local = cols.get(expr.column)
        if local is None:
            local = cols[expr.column] = f"_col{len(cols)}"
        return f"{local}[_i]"
    if isinstance(expr, Arith):
        left = _emit_col_element(expr.left, alias, cols)
        right = _emit_col_element(expr.right, alias, cols)
        return f"({left} {expr.op} {right})"
    raise UnsupportedTriggerError(f"cannot emit column expression {expr!r}")


def _emit_frame_scan(
    lines: list[str],
    relation: str,
    cols: dict[str, str],
    net_init: str,
    row_lines: list[str],
) -> None:
    """Shared skeleton of a generated ``on_frame``: bail to the (also
    compiled) ``on_batch`` on fallback rows or an armed quarantine,
    then net the main relation's deltas straight off the typed columns.

    Everything inside the ``try`` writes only locals — a block that
    does not fit the compiled column shape (missing column, value the
    expression arithmetic rejects) raises KeyError/TypeError *before*
    any engine state changes, so the per-row event path governs.  The
    fixed-side scalar updates are precomputed per block
    (:meth:`_FixedSide.column_updates` is pure) and applied only after
    the whole frame scanned clean.
    """
    lines.append("def on_frame(self, frame):")
    lines.append("    if frame.fallback or self._quarantine is not None:")
    lines.append("        return self.on_batch(frame.events())")
    lines.append(f"    _net = {net_init}")
    lines.append("    _fx = []")
    lines.append("    try:")
    lines.append("        for _blk in frame.blocks:")
    lines.append("            _fx.extend(self._fixed.column_updates(_blk))")
    lines.append(f"            if _blk.relation == {relation!r}:")
    for column, local in cols.items():
        lines.append(f"                {local} = _blk.column({column!r})")
    lines.append("                _wts = _blk.weights")
    lines.append("                for _i in range(len(_wts)):")
    lines.append("                    _w = _wts[_i]")
    for row_line in row_lines:
        lines.append("                    " + row_line)
    lines.append("    except (KeyError, TypeError):")
    lines.append("        return self.on_batch(frame.events())")
    lines.append("    for _fsc, _fvals, _fwts in _fx:")
    lines.append("        _fsc.apply_columns(_fvals, _fwts)")


# ---------------------------------------------------------------------------
# PointIndexEngine (PAI_EQUALITY — EQ)
# ---------------------------------------------------------------------------


def _point_key(engine: PointIndexEngine) -> tuple:
    return ("point",) + codegen_key(engine._plan, _backend_flavor(engine.aggr_index))


def _point_emit(engine: PointIndexEngine) -> str:
    query = engine._plan.query
    spec = engine.spec
    alias = query.relations[0].alias
    relation = engine.relation
    flavor = _backend_flavor(engine.aggr_index)
    fenwick = flavor in _DENSE_FLAVORS
    infos = _scalar_infos(engine._fixed._scalars)

    cols = engine._group_cols
    if len(cols) == 1:
        group_src = f"_row[{cols[0]!r}]"
    else:
        group_src = "(" + ", ".join(f"_row[{c!r}]" for c in cols) + ")"
    inner_alias = spec.inner_col.relation
    inner_src = _emit_row_expr(spec.inner_arg, inner_alias, "_row")
    scale, call = _peel_constant_scale(query.select[0].expr)
    res_src = _emit_row_expr(call.arg, alias, "_row")
    fixed_src = _emit_fixed_expr(spec.fixed_expr, infos)
    probe = _probe_src(spec.outer_op, "_ai", "_pv")

    def apply_body(lines: list[str], indent: str) -> None:
        # Mirrors PointIndexEngine._apply_group line for line.
        lines.append(f"{indent}if _S.enabled:")
        lines.append(f"{indent}    _S.inc('engine.point_applies')")
        lines.append(f"{indent}_old_rhs = _bm.get(_group, 0)")
        lines.append(f"{indent}_old_res = _rm.get(_group, 0)")
        lines.append(f"{indent}_new_rhs = _old_rhs + _ird")
        lines.append(f"{indent}_new_res = _old_res + _res")
        lines.append(f"{indent}if _old_res != 0:")
        _emit_index_add(lines, indent + "    ", flavor, "_old_rhs", "-_old_res")
        lines.append(f"{indent}if _new_res != 0:")
        _emit_index_add(lines, indent + "    ", flavor, "_new_rhs", "_new_res")
        lines.append(f"{indent}_bm.add(_group, _ird)")
        lines.append(f"{indent}_rm.add(_group, _res)")

    def result_tail(lines: list[str]) -> None:
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        lines.append("        _S.inc('engine.result_probes')")
        lines.append(f"    _pv = {fixed_src}")
        lines.append(f"    return {scale!r} * {probe}")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    lines.append("    _ai = self.aggr_index")
    _emit_scalar_updates(lines, "    ", infos)
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _group = {group_src}")
    lines.append(f"        _ird = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _bm = self.bound_map")
    lines.append("        _rm = self.res_map")
    if fenwick:
        for stmt in _DENSE_PROLOGUE:
            lines.append(f"        {stmt}")
    apply_body(lines, "        ")
    _emit_deopt_check(lines, "        ", flavor)
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    lines.append("    _net = {}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    lines.append(f"        if _rel != {relation!r}:")
    lines.append("            continue")
    lines.append(f"        _group = {group_src}")
    lines.append(f"        _ird = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _entry = _net.get(_group)")
    lines.append("        if _entry is None:")
    lines.append("            _net[_group] = [_ird, _res]")
    lines.append("        else:")
    lines.append("            _entry[0] += _ird")
    lines.append("            _entry[1] += _res")
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    _rm = self.res_map")
    if fenwick:
        for stmt in _DENSE_PROLOGUE:
            lines.append(f"    {stmt}")
    lines.append("    for _group, (_ird, _res) in _net.items():")
    lines.append("        if _ird == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    _emit_deopt_check(lines, "    ", flavor)
    result_tail(lines)
    lines.append("")

    # Columnar trigger: the netting loop reads the typed columns
    # directly, so per-row dicts are never materialized; the net dict's
    # insertion order matches the event loop's (a frame holds at most
    # one block per relation, in first-seen order).
    fcols: dict[str, str] = {}
    for column in cols:
        fcols[column] = f"_col{len(fcols)}"
    if len(cols) == 1:
        fgroup_src = f"{fcols[cols[0]]}[_i]"
    else:
        fgroup_src = "(" + ", ".join(f"{fcols[c]}[_i]" for c in cols) + ")"
    finner_src = _emit_col_element(spec.inner_arg, inner_alias, fcols)
    fres_src = _emit_col_element(call.arg, alias, fcols)
    row_lines = [
        f"_group = {fgroup_src}",
        f"_ird = ({finner_src}) * _w",
        f"_res = ({fres_src}) * _w",
        "_entry = _net.get(_group)",
        "if _entry is None:",
        "    _net[_group] = [_ird, _res]",
        "else:",
        "    _entry[0] += _ird",
        "    _entry[1] += _res",
    ]
    _emit_frame_scan(lines, relation, fcols, "{}", row_lines)
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    _rm = self.res_map")
    if fenwick:
        for stmt in _DENSE_PROLOGUE:
            lines.append(f"    {stmt}")
    lines.append("    for _group, (_ird, _res) in _net.items():")
    lines.append("        if _ird == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    _emit_deopt_check(lines, "    ", flavor)
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _point_bind(engine: PointIndexEngine) -> dict[str, Any]:
    return {
        f"_sc{i}": scalar
        for i, scalar in enumerate(engine._fixed._scalars.values())
    }


# ---------------------------------------------------------------------------
# RangeIndexEngine (RPAI_INEQUALITY — VWAP)
# ---------------------------------------------------------------------------


def _range_key(engine: RangeIndexEngine) -> tuple:
    return ("range",) + codegen_key(engine._plan, _backend_flavor(engine.aggr_index))


def _range_emit(engine: RangeIndexEngine) -> str:
    query = engine._plan.query
    spec = engine.spec
    alias = query.relations[0].alias
    relation = engine.relation
    infos = _scalar_infos(engine._fixed._scalars)

    col = repr(engine._key_col)
    key_src = f"(-_row[{col}])" if engine._key_sign == -1 else f"_row[{col}]"
    inner_alias = spec.inner_col.relation
    inner_src = _emit_row_expr(spec.inner_arg, inner_alias, "_row")
    scale, call = _peel_constant_scale(query.select[0].expr)
    res_src = _emit_row_expr(call.arg, alias, "_row")
    fixed_src = _emit_fixed_expr(spec.fixed_expr, infos)
    probe = _probe_src(spec.outer_op, "_ai", "_pv")
    inclusive_inner = engine._inclusive_inner

    def apply_body(lines: list[str], indent: str) -> None:
        # Mirrors RangeIndexEngine._apply_outer with the inclusive/
        # strict inner-θ branch resolved at compile time.
        lines.append(f"{indent}if _S.enabled:")
        lines.append(f"{indent}    _S.inc('engine.range_applies')")
        lines.append(f"{indent}_old = _bm.get(_key, 0)")
        lines.append(f"{indent}_pfx = _bm.get_sum(_key, inclusive=False)")
        if inclusive_inner:
            lines.append(f"{indent}_ai.shift_keys(_pfx, _vol, inclusive=False)")
            lines.append(f"{indent}_bm.add(_key, _vol)")
            lines.append(f"{indent}if _res != 0:")
            lines.append(f"{indent}    _ai.add(_pfx + _old + _vol, _res)")
        else:
            lines.append(
                f"{indent}_ai.shift_keys(_pfx, _vol, inclusive=_old == 0)"
            )
            lines.append(f"{indent}_bm.add(_key, _vol)")
            lines.append(f"{indent}if _res != 0:")
            lines.append(f"{indent}    _ai.add(_pfx, _res)")

    def result_tail(lines: list[str]) -> None:
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        lines.append("        _S.inc('engine.result_probes')")
        lines.append(f"    _pv = {fixed_src}")
        lines.append(f"    return {scale!r} * {probe}")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    lines.append("    _ai = self.aggr_index")
    _emit_scalar_updates(lines, "    ", infos)
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _bm = self.bound_map")
    apply_body(lines, "        ")
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    lines.append("    _net = {}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    lines.append(f"        if _rel != {relation!r}:")
    lines.append("            continue")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _entry = _net.get(_key)")
    lines.append("        if _entry is None:")
    lines.append("            _net[_key] = [_vol, _res]")
    lines.append("        else:")
    lines.append("            _entry[0] += _vol")
    lines.append("            _entry[1] += _res")
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    for _key, (_vol, _res) in _net.items():")
    lines.append("        if _vol == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    result_tail(lines)
    lines.append("")

    # Columnar trigger — the range twin of the point engine's generated
    # on_frame (stored keys read straight off the key column, sign
    # applied element-wise).
    fcols: dict[str, str] = {engine._key_col: "_col0"}
    fkey_src = (
        f"-_col0[_i]" if engine._key_sign == -1 else "_col0[_i]"
    )
    finner_src = _emit_col_element(spec.inner_arg, inner_alias, fcols)
    fres_src = _emit_col_element(call.arg, alias, fcols)
    row_lines = [
        f"_key = {fkey_src}",
        f"_vol = ({finner_src}) * _w",
        f"_res = ({fres_src}) * _w",
        "_entry = _net.get(_key)",
        "if _entry is None:",
        "    _net[_key] = [_vol, _res]",
        "else:",
        "    _entry[0] += _vol",
        "    _entry[1] += _res",
    ]
    _emit_frame_scan(lines, relation, fcols, "{}", row_lines)
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    for _key, (_vol, _res) in _net.items():")
    lines.append("        if _vol == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _range_bind(engine: RangeIndexEngine) -> dict[str, Any]:
    return {
        f"_sc{i}": scalar
        for i, scalar in enumerate(engine._fixed._scalars.values())
    }


# ---------------------------------------------------------------------------
# GroupedRangeIndexEngine (RPAI_INEQUALITY with GROUP BY — grouped VWAP)
# ---------------------------------------------------------------------------
# The trigger body *is* a loop over the live per-group indexes, so the
# emitter generates that loop instead of a fixed operation sequence:
# group-key extraction and the shift boundary are hoisted out of it
# (computed once per coalesced key), the inclusive/strict inner-θ branch
# and the key sign are resolved at compile time, and the per-group index
# dispatch is monomorphized on the engine's index class — the dense
# flavors inline the dense add per group index, with an end-of-invocation
# guard that deopts when any group's index migrated mid-loop.


def _grouped_flavor(engine: GroupedRangeIndexEngine) -> str:
    # The flavor is decided off a probe instance (group_indexes may be
    # empty at specialize time): all groups share one factory, so one
    # instance tells us the family and its dense/sparse split.
    live = list(engine.group_indexes.values())
    probe = live[0] if live else engine._index_cls(prune_zeros=True)
    if isinstance(probe, AdaptiveIndex):
        migrated = next((ix for ix in live if not ix._dense), None)
        if migrated is not None:
            return f"adaptive-{migrated._name}"
        return probe._name if probe._dense else f"adaptive-{probe._name}"
    return type(probe).__name__.lower()


def _grouped_key(engine: GroupedRangeIndexEngine) -> tuple:
    return ("grouped",) + codegen_key(engine._plan, _grouped_flavor(engine))


def _grouped_emit(engine: GroupedRangeIndexEngine) -> str:
    query = engine._plan.query
    spec = engine.spec
    alias = query.relations[0].alias
    relation = engine.relation
    flavor = _grouped_flavor(engine)
    fenwick = flavor in _DENSE_FLAVORS
    infos = _scalar_infos(engine._fixed._scalars)

    col = repr(engine._key_col)
    key_src = f"(-_row[{col}])" if engine._key_sign == -1 else f"_row[{col}]"
    inner_alias = spec.inner_col.relation
    inner_src = _emit_row_expr(spec.inner_arg, inner_alias, "_row")
    aggregate_items = [
        item
        for item in query.select
        if any(isinstance(node, AggrCall) for node in walk_expr(item.expr))
    ]
    scale, call = _peel_constant_scale(aggregate_items[0].expr)
    res_src = _emit_row_expr(call.arg, alias, "_row")
    gcols = engine._group_columns
    if len(gcols) == 1:
        gkey_src = f"_row[{gcols[0]!r}]"
    else:
        gkey_src = "(" + ", ".join(f"_row[{c!r}]" for c in gcols) + ")"
    fixed_src = _emit_fixed_expr(spec.fixed_expr, infos)
    probe = _probe_src(spec.outer_op, "_idx", "_pv")
    inclusive_inner = engine._inclusive_inner

    def shift_prologue(lines: list[str], indent: str) -> None:
        # Mirrors GroupedRangeIndexEngine._apply_key up to the per-group
        # result placement: counters, boundary from the shared bound
        # map, the same range shift fanned over every live group index.
        lines.append(f"{indent}if _S.enabled:")
        lines.append(f"{indent}    _S.inc('engine.grouped_applies')")
        lines.append(
            f"{indent}    _S.observe('engine.grouped_fanout', len(_gi))"
        )
        lines.append(f"{indent}_old = _bm.get(_key, 0)")
        lines.append(f"{indent}_pfx = _bm.get_sum(_key, inclusive=False)")
        if inclusive_inner:
            lines.append(f"{indent}_new = _pfx + _old + _vol")
            lines.append(f"{indent}for _idx in _gi.values():")
            lines.append(f"{indent}    _idx.shift_keys(_pfx, _vol, inclusive=False)")
        else:
            lines.append(f"{indent}_new = _pfx")
            lines.append(f"{indent}_inc = _old == 0")
            lines.append(f"{indent}for _idx in _gi.values():")
            lines.append(f"{indent}    _idx.shift_keys(_pfx, _vol, inclusive=_inc)")
        lines.append(f"{indent}_bm.add(_key, _vol)")

    def group_add(lines: list[str], indent: str, gkey: str, res: str) -> None:
        # One group's net result contribution at the post-shift key,
        # with the lazy index creation and empty-index pruning of the
        # interpreted loop.
        lines.append(f"{indent}_idx = _gi.get({gkey})")
        lines.append(f"{indent}if _idx is None:")
        lines.append(f"{indent}    _idx = _gi[{gkey}] = _mkindex(prune_zeros=True)")
        if fenwick:
            lines.append(f"{indent}_ai = _idx")
            for stmt in _DENSE_PROLOGUE:
                lines.append(f"{indent}{stmt}")
            _emit_index_add(lines, indent, flavor, "_new", res)
        else:
            lines.append(f"{indent}_idx.add(_new, {res})")
        lines.append(f"{indent}if not len(_idx):")
        lines.append(f"{indent}    del _gi[{gkey}]")

    def deopt_check(lines: list[str]) -> None:
        if fenwick:
            lines.append(
                "    if any(not _gx._dense for _gx in "
                "self.group_indexes.values()):"
            )
            lines.append("        _deopt(self, 'backend_migrated')")

    def result_tail(lines: list[str]) -> None:
        # Inlined grouped result(): the fixed probe is hoisted out of
        # the per-group loop; _probe's counter site is per live group.
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        lines.append(f"    _pv = {fixed_src}")
        lines.append("    _out = {}")
        lines.append("    for _gk, _idx in self.group_indexes.items():")
        lines.append("        if _S.enabled:")
        lines.append("            _S.inc('engine.result_probes')")
        lines.append(f"        _val = {scale!r} * {probe}")
        lines.append("        if _val != 0:")
        lines.append("            _out[_gk] = _val")
        lines.append("    return _out")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    _emit_scalar_updates(lines, "    ", infos)
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append(f"        _gkey = {gkey_src}")
    lines.append("        _gi = self.group_indexes")
    lines.append("        _bm = self.bound_map")
    shift_prologue(lines, "        ")
    lines.append("        if _res != 0:")
    group_add(lines, "            ", "_gkey", "_res")
    deopt_check(lines)
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    lines.append("    _net = {}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    lines.append(f"        if _rel != {relation!r}:")
    lines.append("            continue")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append(f"        _gkey = {gkey_src}")
    lines.append("        _entry = _net.get(_key)")
    lines.append("        if _entry is None:")
    lines.append("            _entry = _net[_key] = [0.0, {}]")
    lines.append("        _entry[0] += _vol")
    lines.append("        _pg = _entry[1]")
    lines.append("        _pg[_gkey] = _pg.get(_gkey, 0) + _res")
    lines.append("    _gi = self.group_indexes")
    lines.append("    _bm = self.bound_map")
    lines.append("    for _key, (_vol, _pg) in _net.items():")
    lines.append("        if _vol == 0 and all(_r == 0 for _r in _pg.values()):")
    lines.append("            continue")
    shift_prologue(lines, "        ")
    lines.append("        for _gkey, _res in _pg.items():")
    lines.append("            if _res == 0:")
    lines.append("                continue")
    group_add(lines, "            ", "_gkey", "_res")
    deopt_check(lines)
    result_tail(lines)
    lines.append("")

    # Columnar trigger: same netting as on_batch off the typed columns.
    fcols: dict[str, str] = {engine._key_col: "_col0"}
    fkey_src = "-_col0[_i]" if engine._key_sign == -1 else "_col0[_i]"
    finner_src = _emit_col_element(spec.inner_arg, inner_alias, fcols)
    fres_src = _emit_col_element(call.arg, alias, fcols)
    for column in gcols:
        if column not in fcols:
            fcols[column] = f"_col{len(fcols)}"
    if len(gcols) == 1:
        fgkey_src = f"{fcols[gcols[0]]}[_i]"
    else:
        fgkey_src = "(" + ", ".join(f"{fcols[c]}[_i]" for c in gcols) + ")"
    row_lines = [
        f"_key = {fkey_src}",
        f"_vol = ({finner_src}) * _w",
        f"_res = ({fres_src}) * _w",
        f"_gkey = {fgkey_src}",
        "_entry = _net.get(_key)",
        "if _entry is None:",
        "    _entry = _net[_key] = [0.0, {}]",
        "_entry[0] += _vol",
        "_pg = _entry[1]",
        "_pg[_gkey] = _pg.get(_gkey, 0) + _res",
    ]
    _emit_frame_scan(lines, relation, fcols, "{}", row_lines)
    lines.append("    _gi = self.group_indexes")
    lines.append("    _bm = self.bound_map")
    lines.append("    for _key, (_vol, _pg) in _net.items():")
    lines.append("        if _vol == 0 and all(_r == 0 for _r in _pg.values()):")
    lines.append("            continue")
    shift_prologue(lines, "        ")
    lines.append("        for _gkey, _res in _pg.items():")
    lines.append("            if _res == 0:")
    lines.append("                continue")
    group_add(lines, "            ", "_gkey", "_res")
    deopt_check(lines)
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _grouped_bind(engine: GroupedRangeIndexEngine) -> dict[str, Any]:
    bindings: dict[str, Any] = {
        f"_sc{i}": scalar
        for i, scalar in enumerate(engine._fixed._scalars.values())
    }
    bindings["_mkindex"] = engine._index_cls
    return bindings


# ---------------------------------------------------------------------------
# GeneralAlgorithmEngine (SQ1 / SQ2)
# ---------------------------------------------------------------------------


class _CorrInfo:
    """Static description of one correlated subquery (Algorithm 3)."""

    __slots__ = ("name", "func", "relation", "theta", "g_expr",
                 "inner_key_src", "inner_arg_src", "scale")

    def __init__(
        self, name: str, sub: AggrQuery, correlated: Any, outer_alias: str
    ) -> None:
        self.name = name
        self.func = correlated.func
        if self.func not in ("SUM", "COUNT", "AVG"):
            raise UnsupportedTriggerError(
                f"correlated {self.func} needs the ordered bound map walk"
            )
        self.relation = correlated.relation
        self.theta = correlated.theta
        self.scale = correlated.scale
        inner_alias = sub.relations[0].alias
        pred = sub.where
        assert isinstance(pred, Comparison)  # _CorrelatedSubquery enforces
        f_expr, _theta, g_expr = correlated._split_predicate(
            pred, inner_alias, outer_alias
        )
        self.g_expr = g_expr
        self.inner_key_src = _emit_row_expr(f_expr, inner_alias, "_row")
        call = sub.select[0].expr
        if isinstance(call, Arith):  # constant-scaled aggregate
            _scale, call = _peel_constant_scale(call)
        assert isinstance(call, AggrCall)
        self.inner_arg_src = _emit_row_expr(call.arg, inner_alias, "_row")

    def value_src(self, g_src: str) -> str:
        """Inline of ``_CorrelatedSubquery.value(g)``."""
        scale = repr(self.scale)
        if self.func == "SUM":
            return f"({scale} * {self.name}.free_sum[{g_src}])"
        if self.func == "COUNT":
            return f"({scale} * {self.name}.free_count[{g_src}])"
        return (
            f"({scale} * (({self.name}.free_sum[{g_src}] / "
            f"{self.name}.free_count[{g_src}]) "
            f"if {self.name}.free_count[{g_src}] else 0))"
        )


def _ga_statics(engine: GeneralAlgorithmEngine):
    """Static emission inputs for the general algorithm; raises
    :class:`UnsupportedTriggerError` on shapes that need the
    interpreted paths (correlated MIN/MAX)."""
    query = engine.query
    alias = engine.alias
    infos = _scalar_infos(engine._scalars)
    corr_infos: dict[AggrQuery, _CorrInfo] = {}
    for i, (sub, correlated) in enumerate(engine._correlated.items()):
        corr_infos[sub] = _CorrInfo(f"_c{i}", sub, correlated, alias)

    def side_src(expr: Expr, row: str) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, ColumnRef):
            if expr.relation != alias:
                raise UnsupportedTriggerError(f"unexpected alias in {expr}")
            return f"{row}[{expr.column!r}]"
        if isinstance(expr, Arith):
            return (
                f"({side_src(expr.left, row)} {expr.op} "
                f"{side_src(expr.right, row)})"
            )
        if isinstance(expr, SubqueryExpr):
            if expr.query in corr_infos:
                info = corr_infos[expr.query]
                g_src = _emit_row_expr(info.g_expr, alias, row)
                return info.value_src(g_src)
            info = infos[expr.query]
            return _scalar_value_src(info.name, info.func)
        raise UnsupportedTriggerError(f"unsupported predicate operand {expr!r}")

    predicates = []
    for conjunct in query.conjuncts():
        if not isinstance(conjunct, Comparison):
            raise UnsupportedTriggerError("non-conjunctive predicate")
        op = "!=" if conjunct.op == "<>" else conjunct.op
        op = "==" if op == "=" else op
        predicates.append(
            f"({side_src(conjunct.left, '_orow')} {op} "
            f"{side_src(conjunct.right, '_orow')})"
        )
    return infos, corr_infos, predicates


def _ga_key(engine: GeneralAlgorithmEngine) -> tuple:
    return ("general", engine.query, "ga")


def _ga_emit(engine: GeneralAlgorithmEngine) -> str:
    query = engine.query
    relation = engine.relation
    alias = engine.alias
    infos, corr_infos, predicates = _ga_statics(engine)

    cols = engine._group_columns
    group_src = "(" + ", ".join(f"_row[{c!r}]" for c in cols) + ("," if len(cols) == 1 else "") + ")"
    _scale, call = _peel_constant_scale(query.select[0].expr)
    res_arg_src = _emit_row_expr(call.arg, alias, "_row")
    theta_ops = {"=": "==", "<>": "!="}

    def emit_free_pass(lines: list[str], indent: str, info: _CorrInfo,
                       val: str, wgt: str) -> None:
        op = theta_ops.get(info.theta, info.theta)
        lines.append(f"{indent}_fs = {info.name}.free_sum")
        lines.append(f"{indent}_fc = {info.name}.free_count")
        lines.append(f"{indent}for _g in _fs:")
        lines.append(f"{indent}    if _k {op} _g:")
        lines.append(f"{indent}        _fs[_g] += {val}")
        lines.append(f"{indent}        _fc[_g] += {wgt}")

    def emit_recompute(lines: list[str]) -> None:
        # Mirrors GeneralAlgorithmEngine._recompute with the predicate
        # closures unrolled to plain comparisons.
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.result_recomputes')")
        lines.append("        _S.observe('engine.result_map_size', len(self._res_sum))")
        lines.append("    _total = 0")
        lines.append("    _count = 0")
        lines.append("    _rcnt = self._res_count")
        lines.append("    _rrep = self._res_repr")
        lines.append("    for _gkey, _gsum in self._res_sum.items():")
        lines.append("        _orow = _rrep[_gkey]")
        for pred in predicates:
            lines.append(f"        if not {pred}:")
            lines.append("            continue")
        lines.append("        _total += _gsum")
        lines.append("        _count += _rcnt[_gkey]")
        if engine._result_func == "SUM":
            lines.append(f"    _result = {engine._result_scale!r} * _total")
        elif engine._result_func == "COUNT":
            lines.append(f"    _result = {engine._result_scale!r} * _count")
        else:
            lines.append(
                f"    _result = {engine._result_scale!r} * "
                "(_total / _count if _count else 0)"
            )
        lines.append("    self._result = _result")
        lines.append("    return _result")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    _emit_scalar_updates(lines, "    ", infos)
    for info in corr_infos.values():
        lines.append(f"    if _rel == {info.relation!r}:")
        lines.append(f"        _k = {info.inner_key_src}")
        lines.append(f"        _v = ({info.inner_arg_src}) * _w")
        lines.append(f"        {info.name}.bound_sum.add(_k, _v)")
        lines.append(f"        {info.name}.bound_count.add(_k, _w)")
        emit_free_pass(lines, "        ", info, "_v", "_w")
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _key = {group_src}")
    lines.append(f"        _val = {res_arg_src}")
    lines.append("        self._apply_outer_group(_key, _val * _w, _w)")
    emit_recompute(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    for i in range(len(corr_infos)):
        lines.append(f"    _net{i} = {{}}")
    lines.append("    _onet = {}")
    lines.append("    _oorder = []")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    for i, info in enumerate(corr_infos.values()):
        lines.append(f"        if _rel == {info.relation!r}:")
        lines.append(f"            _k = {info.inner_key_src}")
        lines.append(f"            _v = ({info.inner_arg_src}) * _w")
        lines.append(f"            _entry = _net{i}.get(_k)")
        lines.append("            if _entry is None:")
        lines.append(f"                _net{i}[_k] = [_v, _w]")
        lines.append("            else:")
        lines.append("                _entry[0] += _v")
        lines.append("                _entry[1] += _w")
    lines.append(f"        if _rel == {relation!r}:")
    lines.append(f"            _key = {group_src}")
    lines.append(f"            _val = {res_arg_src}")
    lines.append("            _entry = _onet.get(_key)")
    lines.append("            if _entry is None:")
    lines.append("                _onet[_key] = [_val * _w, _w]")
    lines.append("                _oorder.append(_key)")
    lines.append("            else:")
    lines.append("                _entry[0] += _val * _w")
    lines.append("                _entry[1] += _w")
    lines.append("    if _S.enabled and events:")
    nets = " + ".join(
        [f"len(_net{i})" for i in range(len(corr_infos))] + ["len(_onet)"]
    )
    lines.append(f"        _S.observe('engine.batch_coalesced_keys', {nets})")
    for i, info in enumerate(corr_infos.values()):
        lines.append(f"    for _k, (_v, _wn) in _net{i}.items():")
        lines.append("        if _v == 0 and _wn == 0:")
        lines.append("            continue")
        lines.append(f"        {info.name}.bound_sum.add(_k, _v)")
        lines.append(f"        {info.name}.bound_count.add(_k, _wn)")
        emit_free_pass(lines, "        ", info, "_v", "_wn")
    lines.append("    _rcnt = self._res_count")
    lines.append("    for _key in _oorder:")
    lines.append("        _sd, _cd = _onet[_key]")
    lines.append("        if _cd == 0 and _key not in _rcnt:")
    lines.append("            continue")
    lines.append("        if _sd == 0 and _cd == 0:")
    lines.append("            continue")
    lines.append("        self._apply_outer_group(_key, _sd, int(_cd))")
    emit_recompute(lines)
    return "\n".join(lines) + "\n"


def _ga_bind(engine: GeneralAlgorithmEngine) -> dict[str, Any]:
    bindings: dict[str, Any] = {
        f"_sc{i}": scalar for i, scalar in enumerate(engine._scalars.values())
    }
    bindings.update(
        {f"_c{i}": c for i, c in enumerate(engine._correlated.values())}
    )
    return bindings


# ---------------------------------------------------------------------------
# ConjunctiveIndexEngine (RPAI_CONJUNCTIVE — MST)
# ---------------------------------------------------------------------------
# Algorithm 4's per-relation factor-sum recombination is unrolled at
# compile time: each relation side's ShiftedSide.apply becomes a fixed
# sequence of shift/add pairs over its statically known index count
# (key sign and inclusive/strict resolved per side), and the result
# expression's term × factor-sum products are emitted as one flat
# arithmetic expression in term order.  Side objects, bound maps and
# the parallel indexes are bound as globals at install time — the
# restore path rebuilds the sides before re-specializing, so the
# bindings always reference the live structures.


def _conj_key(engine: ConjunctiveIndexEngine) -> tuple:
    return ("conjunctive",) + codegen_key(
        engine._plan, engine._index_cls_arg.__name__.lower()
    )


def _conj_emit(engine: ConjunctiveIndexEngine) -> str:
    query = engine._plan.query
    infos = _scalar_infos(engine._scalars)
    aliases = list(engine._sides)
    alias_pos = {a: k for k, a in enumerate(aliases)}

    class _SideInfo:
        __slots__ = ("k", "alias", "spec", "attr_col", "inner_src",
                     "factor_srcs", "count_index", "key_sign", "inclusive")

    side_infos: dict[str, _SideInfo] = {}
    for alias in aliases:
        info = _SideInfo()
        info.k = alias_pos[alias]
        info.alias = alias
        spec = engine._specs[alias]
        info.spec = spec
        info.attr_col = spec.outer_col.column
        info.inner_src = _emit_row_expr(
            spec.inner_arg, spec.inner_col.relation, "_row"
        )
        info.factor_srcs = [
            _emit_row_expr(f, alias, "_row") for f in engine._factor_exprs[alias]
        ]
        info.count_index = len(info.factor_srcs)
        side = engine._sides[alias]
        info.key_sign = side.key_sign
        info.inclusive = side.inclusive
        side_infos[alias] = info

    def emit_apply(
        lines: list[str], indent: str, info: _SideInfo,
        wgt: str, deltas: list[str],
    ) -> None:
        # ShiftedSide.apply with the per-index zip unrolled; same
        # operation order (all shifts interleaved with their adds, then
        # the bound-map update and the weight total).
        k = info.k
        lines.append(f"{indent}_key = -_att" if info.key_sign == -1
                     else f"{indent}_key = _att")
        lines.append(f"{indent}_old = _s{k}_bm.get(_key, 0)")
        lines.append(f"{indent}_pfx = _s{k}_bm.get_sum(_key, inclusive=False)")
        if info.inclusive:
            lines.append(f"{indent}_new = _pfx + _old + {wgt}")
            for j, delta in enumerate(deltas):
                lines.append(
                    f"{indent}_s{k}_i{j}.shift_keys(_pfx, {wgt}, inclusive=False)"
                )
                lines.append(f"{indent}if {delta} != 0:")
                lines.append(f"{indent}    _s{k}_i{j}.add(_new, {delta})")
        else:
            lines.append(f"{indent}_binc = _old == 0")
            for j, delta in enumerate(deltas):
                lines.append(
                    f"{indent}_s{k}_i{j}.shift_keys(_pfx, {wgt}, inclusive=_binc)"
                )
                lines.append(f"{indent}if {delta} != 0:")
                lines.append(f"{indent}    _s{k}_i{j}.add(_pfx, {delta})")
        lines.append(f"{indent}_s{k}_bm.add(_key, {wgt})")
        lines.append(f"{indent}_s{k}.total_weight += {wgt}")

    def result_tail(lines: list[str]) -> None:
        # Inlined result(): every side's qualifying sums are computed
        # (term usage notwithstanding, matching the interpreted probe
        # order), then the decomposed terms recombine as one flat
        # expression per term.
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        for alias in aliases:
            info = side_infos[alias]
            k = info.k
            fixed_src = _emit_fixed_expr(info.spec.fixed_expr, infos)
            lines.append(f"    _p{k} = {fixed_src}")
            for j in range(info.count_index + 1):
                probe = _probe_src(info.spec.outer_op, f"_s{k}_i{j}", f"_p{k}")
                lines.append(f"    _q{k}_{j} = {probe}")
        lines.append("    _t = 0.0")
        for coef, plan_entry in engine._term_plan:
            factors = [repr(coef)]
            for alias, factor_index in plan_entry.items():
                info = side_infos[alias]
                j = info.count_index if factor_index is None else factor_index
                factors.append(f"_q{info.k}_{j}")
            lines.append(f"    _t += ({' * '.join(factors)})")
        lines.append(f"    return {engine._scale!r} * _t")

    relations = list(engine._alias_of_relation)

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    _emit_scalar_updates(lines, "    ", infos)
    branch = "if"
    for relation in relations:
        lines.append(f"    {branch} _rel == {relation!r}:")
        branch = "elif"
        for alias in engine._alias_of_relation[relation]:
            info = side_infos[alias]
            lines.append(f"        _att = _row[{info.attr_col!r}]")
            lines.append(f"        _wgt = ({info.inner_src}) * _w")
            deltas = []
            for j, factor_src in enumerate(info.factor_srcs):
                lines.append(f"        _d{j} = ({factor_src}) * _w")
                deltas.append(f"_d{j}")
            deltas.append("_w")  # the count index
            emit_apply(lines, "        ", info, "_wgt", deltas)
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    for k in range(len(aliases)):
        lines.append(f"    _n{k} = {{}}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    branch = "if"
    for relation in relations:
        lines.append(f"        {branch} _rel == {relation!r}:")
        branch = "elif"
        for alias in engine._alias_of_relation[relation]:
            info = side_infos[alias]
            k = info.k
            lines.append(f"            _att = _row[{info.attr_col!r}]")
            lines.append(f"            _wgt = ({info.inner_src}) * _w")
            entry = ["_wgt"]
            for j, factor_src in enumerate(info.factor_srcs):
                lines.append(f"            _d{j} = ({factor_src}) * _w")
                entry.append(f"_d{j}")
            entry.append("_w")
            lines.append(f"            _e = _n{k}.get(_att)")
            lines.append("            if _e is None:")
            lines.append(f"                _n{k}[_att] = [{', '.join(entry)}]")
            lines.append("            else:")
            for slot, src in enumerate(entry):
                lines.append(f"                _e[{slot}] += {src}")
    lines.append("    if _S.enabled and events:")
    nets = " + ".join(f"len(_n{k})" for k in range(len(aliases)))
    lines.append(f"        _S.observe('engine.batch_coalesced_keys', {nets})")
    for alias in aliases:
        info = side_infos[alias]
        k = info.k
        slots = info.count_index + 2  # weight + factors + count
        lines.append(f"    for _att, _e in _n{k}.items():")
        zero = " and ".join(f"_e[{slot}] == 0" for slot in range(slots))
        lines.append(f"        if {zero}:")
        lines.append("            continue")
        lines.append("        _wgt = _e[0]")
        deltas = []
        for j in range(info.count_index + 1):
            lines.append(f"        _d{j} = _e[{j + 1}]")
            deltas.append(f"_d{j}")
        emit_apply(lines, "        ", info, "_wgt", deltas)
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _conj_bind(engine: ConjunctiveIndexEngine) -> dict[str, Any]:
    bindings: dict[str, Any] = {
        f"_sc{i}": scalar for i, scalar in enumerate(engine._scalars.values())
    }
    for k, side in enumerate(engine._sides.values()):
        bindings[f"_s{k}"] = side
        bindings[f"_s{k}_bm"] = side.bound_map
        for j, index in enumerate(side.indexes):
            bindings[f"_s{k}_i{j}"] = index
    return bindings


# ---------------------------------------------------------------------------
# Hand-written per-query engines (PSP / NQ1 / NQ2 / Q17 / Q18)
# ---------------------------------------------------------------------------
# These engines are already specialized by hand, but their interpreted
# on_event still pays attribute chains and method binding per event.
# The emitters below are static sources mirroring each trigger body
# with the hot structures *and their bound methods* pre-bound as
# compile-time globals (safe: every one is assigned once in __init__
# and mutated in place; __setstate__ re-specializes, rebinding to the
# restored structures) and the result read inlined.  Scalars the
# trigger reassigns (running totals, cached results) must stay
# attribute accesses.  Only on_event is emitted — the inherited
# default on_batch loops over the compiled instance on_event, which
# keeps the wrapper counters identical to the interpreted class.

_PSP_SOURCE = """\
def on_event(self, event):
    if _S.enabled:
        _S.inc('engine.events')
    guard = self._quarantine
    if guard is not None and not guard.admit(event):
        return self.result()
    _rel = event.relation
    if _rel == 'bids':
        _row = event.row
        _x = event.weight
        _v = _row['volume']
        _bids_ps_add(_v, _x * _row['price'])
        _bids_ct_add(_v, _x)
        _bids.total_volume += _x * _v
    elif _rel == 'asks':
        _row = event.row
        _x = event.weight
        _v = _row['volume']
        _asks_ps_add(_v, _x * _row['price'])
        _asks_ct_add(_v, _x)
        _asks.total_volume += _x * _v
    if _S.enabled:
        _S.inc('engine.results')
    _at = 0.0001 * _asks.total_volume
    _ask_sum = _asks_ps_suffix(_at)
    _ask_count = _asks_ct_suffix(_at)
    _bt = 0.0001 * _bids.total_volume
    _bid_sum = _bids_ps_suffix(_bt)
    _bid_count = _bids_ct_suffix(_bt)
    return _bid_count * _ask_sum - _ask_count * _bid_sum
"""


def _psp_key(engine: PSPRpaiEngine) -> tuple:
    return ("hand", "PSPRpaiEngine")


def _psp_emit(engine: PSPRpaiEngine) -> str:
    return _PSP_SOURCE


def _psp_bind(engine: PSPRpaiEngine) -> dict[str, Any]:
    bids = engine.sides["bids"]
    asks = engine.sides["asks"]
    return {
        "_bids": bids,
        "_asks": asks,
        "_bids_ps_add": bids.price_sum.add,
        "_bids_ct_add": bids.count.add,
        "_asks_ps_add": asks.price_sum.add,
        "_asks_ct_add": asks.count.add,
        "_bids_ps_suffix": bids.price_sum.suffix_sum,
        "_bids_ct_suffix": bids.count.suffix_sum,
        "_asks_ps_suffix": asks.price_sum.suffix_sum,
        "_asks_ct_suffix": asks.count.suffix_sum,
    }


_NQ1_SOURCE = """\
def on_event(self, event):
    if _S.enabled:
        _S.inc('engine.events')
    guard = self._quarantine
    if guard is not None and not guard.admit(event):
        return self.result()
    if event.relation != 'bids':
        if _S.enabled:
            _S.inc('engine.results')
        _fk = _floor(0.75 * self.total) * _M + (_M - 1)
        return _aggr_total() - _aggr_get_sum(_fk)
    _row = event.row
    _x = event.weight
    _price = _row['price']
    _volume = _row['volume']
    _total = self.total
    _star_old = (
        None if _total == 0
        else _pv_first_above(_total / 4)
    )
    _old_res = _res_get(_price, 0)
    if _old_res != 0:
        _aggr_add(_ev_get_sum(_price) * _M + _price, -_old_res)
    _pv_add(_price, _x * _volume)
    _total += _x * _volume
    self.total = _total
    _new_res = _old_res + _x * _price * _volume
    if _new_res:
        _res_map[_price] = _new_res
    else:
        _res_pop(_price, None)
    _star_new = (
        None if _total == 0
        else _pv_first_above(_total / 4)
    )
    _cand = {_price: None}
    if _star_old is not None and _star_new is not None and _star_old != _star_new:
        _lo = min(_star_old, _star_new)
        _hi = max(_star_old, _star_new)
        for _p, _v in _pv_range_items(_lo, _hi, lo_inclusive=True, hi_inclusive=False):
            _cand[int(_p)] = None
    for _p in sorted(_cand):
        _eligible = _star_new is not None and _p >= _star_new
        _target = _pv_get(_p, 0) if _eligible else 0
        _delta = _target - _ev_get(_p, 0)
        if _delta == 0:
            continue
        _aggr_shift(_ev_get_sum(_p, inclusive=False) * _M + (_p - 1), _delta * _M)
        _ev_add(_p, _delta)
    if _new_res != 0:
        _aggr_add(_ev_get_sum(_price) * _M + _price, _new_res)
    if _S.enabled:
        _S.inc('engine.results')
    _fk = _floor(0.75 * _total) * _M + (_M - 1)
    return _aggr_total() - _aggr_get_sum(_fk)
"""


def _nq1_key(engine: NQ1RpaiEngine) -> tuple:
    return ("hand", "NQ1RpaiEngine")


def _nq1_emit(engine: NQ1RpaiEngine) -> str:
    return _NQ1_SOURCE


_NQ2_SOURCE = """\
def on_event(self, event):
    if _S.enabled:
        _S.inc('engine.events')
    guard = self._quarantine
    if guard is not None and not guard.admit(event):
        return self.result()
    if event.relation != 'bids':
        return self._result
    _row = event.row
    _x = event.weight
    _price = _row['price']
    _volume = _row['volume']
    _pv_add(_price, _x * _volume)
    _total = self.total + _x * _volume
    self.total = _total
    _new_res = _res_get(_price, 0) + _x * _price * _volume
    if _new_res:
        _res_map[_price] = _new_res
    else:
        _res_pop(_price, None)
    _t = 0
    _lhs = 0.75 * _total
    _first_above = _pv_first_above
    _get_sum = _pv_get_sum
    for _p, _res in _res_map.items():
        _star = _first_above(0.25 * _get_sum(_p))
        if _star is None:
            _rhs = 0
        else:
            _rhs = _total - _get_sum(_star, inclusive=False)
        if _lhs < _rhs:
            _t += _res
    self._result = _t
    return _t
"""


def _nq2_key(engine: NQ2RpaiEngine) -> tuple:
    return ("hand", "NQ2RpaiEngine")


def _nq2_emit(engine: NQ2RpaiEngine) -> str:
    return _NQ2_SOURCE


def _nq1_bind(engine: NQ1RpaiEngine) -> dict[str, Any]:
    import math

    from repro.engine.queries.nq import _M

    pv, ev, aggr = engine.price_vol, engine.elig_vol, engine.aggr
    return {
        "_M": _M,
        "_floor": math.floor,
        "_res_map": engine.res_map,
        "_res_get": engine.res_map.get,
        "_res_pop": engine.res_map.pop,
        "_pv_add": pv.add,
        "_pv_get": pv.get,
        "_pv_first_above": pv.first_key_with_prefix_above,
        "_pv_range_items": pv.range_items,
        "_ev_add": ev.add,
        "_ev_get": ev.get,
        "_ev_get_sum": ev.get_sum,
        "_aggr_add": aggr.add,
        "_aggr_shift": aggr.shift_keys,
        "_aggr_total": aggr.total_sum,
        "_aggr_get_sum": aggr.get_sum,
    }


def _nq2_bind(engine: NQ2RpaiEngine) -> dict[str, Any]:
    pv = engine.price_vol
    return {
        "_res_map": engine.res_map,
        "_res_get": engine.res_map.get,
        "_res_pop": engine.res_map.pop,
        "_pv_add": pv.add,
        "_pv_get_sum": pv.get_sum,
        "_pv_first_above": pv.first_key_with_prefix_above,
    }


_Q17_SOURCE = """\
def on_event(self, event):
    if _S.enabled:
        _S.inc('engine.events')
    guard = self._quarantine
    if guard is not None and not guard.admit(event):
        return self.result()
    _rel = event.relation
    _row = event.row
    _x = event.weight
    if _rel == 'part':
        if _row['brand'] == _brand and _row['container'] == _container:
            _pk = _row['partkey']
            _g = _groups_get(_pk)
            if _g is None:
                _g = _groups[_pk] = _PartGroup()
            if _x == 1:
                _qual_add(_pk)
                _g.ensure_tree()
                self._total += _g.contribution()
            else:
                _qual_discard(_pk)
                self._total -= _g.contribution()
                _g.drop_tree()
    elif _rel == 'lineitem':
        _pk = _row['partkey']
        _g = _groups_get(_pk)
        if _g is None:
            _g = _groups[_pk] = _PartGroup()
        _tracked = _pk in _qualifying
        if _tracked:
            self._total -= _g.contribution()
        _q = _row['quantity']
        _pd = _x * _row['extendedprice']
        _dom = _g.domain
        _val = _dom.get(_q, 0) + _pd
        if _val:
            _dom[_q] = _val
        else:
            _dom.pop(_q, None)
        _g.quantity_sum += _x * _q
        _g.count += _x
        _tr = _g.tree
        if _tr is not None:
            _tr.add(_q, _pd)
        if _tracked:
            self._total += _g.contribution()
    if _S.enabled:
        _S.inc('engine.results')
    return self._total / 7.0
"""


def _q17_key(engine: Q17RpaiEngine) -> tuple:
    return ("hand", "Q17RpaiEngine")


def _q17_emit(engine: Q17RpaiEngine) -> str:
    return _Q17_SOURCE


def _q17_bind(engine: Q17RpaiEngine) -> dict[str, Any]:
    from repro.engine.queries.tpch import _PartGroup

    return {
        "_PartGroup": _PartGroup,
        "_brand": engine.brand,
        "_container": engine.container,
        "_groups": engine._groups,
        "_groups_get": engine._groups.get,
        "_qualifying": engine._qualifying,
        "_qual_add": engine._qualifying.add,
        "_qual_discard": engine._qualifying.discard,
    }


# The Q18 emitter goes beyond hoisting: ``_refresh`` is inlined into
# the lineitem and orders branches, specialized to what each branch
# just did.  A lineitem update already holds the new order quantity, so
# the re-read of ``_order_quantity`` folds away; an orders delete just
# popped the order's customer, so its re-activation test is dead and
# only the retraction remains.  Dict and set operations carry no obs
# counters, so counter identity with the interpreted engine holds; the
# differential suite checks the per-event trace.
_Q18_SOURCE = """\
def _refresh(_ok):
    _prev = _active.pop(_ok, None)
    if _prev is not None:
        _ck = _prev[0]
        _rem = _result[_ck] - _prev[1]
        if _rem:
            _result[_ck] = _rem
        else:
            del _result[_ck]
    _q = _order_quantity.get(_ok, 0)
    _ck = _order_customer.get(_ok)
    if _q > _threshold and _ck is not None and _ck in _customers:
        _active[_ok] = (_ck, _q)
        _result[_ck] = _result.get(_ck, 0) + _q

def on_event(self, event):
    if _S.enabled:
        _S.inc('engine.events')
    guard = self._quarantine
    if guard is not None and not guard.admit(event):
        return self.result()
    _rel = event.relation
    _row = event.row
    _x = event.weight
    if _rel == 'lineitem':
        _ok = _row['orderkey']
        _nq = _order_quantity.get(_ok, 0) + _x * _row['quantity']
        _order_quantity[_ok] = _nq
        if _nq == 0:
            del _order_quantity[_ok]
        _prev = _active.pop(_ok, None)
        if _prev is not None:
            _pck = _prev[0]
            _rem = _result[_pck] - _prev[1]
            if _rem:
                _result[_pck] = _rem
            else:
                del _result[_pck]
        if _nq > _threshold:
            _ck = _order_customer.get(_ok)
            if _ck is not None and _ck in _customers:
                _active[_ok] = (_ck, _nq)
                _result[_ck] = _result.get(_ck, 0) + _nq
    elif _rel == 'orders':
        _ok = _row['orderkey']
        _ck = _row['custkey']
        _prev = _active.pop(_ok, None)
        if _prev is not None:
            _pck = _prev[0]
            _rem = _result[_pck] - _prev[1]
            if _rem:
                _result[_pck] = _rem
            else:
                del _result[_pck]
        if _x == 1:
            _order_customer[_ok] = _ck
            _customer_orders.setdefault(_ck, set()).add(_ok)
            if _ck in _customers:
                _q = _order_quantity.get(_ok, 0)
                if _q > _threshold:
                    _active[_ok] = (_ck, _q)
                    _result[_ck] = _result.get(_ck, 0) + _q
        else:
            _order_customer.pop(_ok, None)
            _customer_orders.get(_ck, set()).discard(_ok)
    elif _rel == 'customer':
        _ck = _row['custkey']
        if _x == 1:
            _customers.add(_ck)
        else:
            _customers.discard(_ck)
        for _ok in list(_customer_orders.get(_ck, ())):
            _refresh(_ok)
    if _S.enabled:
        _S.inc('engine.results')
    return dict(_result)
"""


def _q18_key(engine: Q18RpaiEngine) -> tuple:
    return ("hand", "Q18RpaiEngine")


def _q18_emit(engine: Q18RpaiEngine) -> str:
    return _Q18_SOURCE


def _q18_bind(engine: Q18RpaiEngine) -> dict[str, Any]:
    return {
        "_threshold": engine.threshold,
        "_order_quantity": engine._order_quantity,
        "_order_customer": engine._order_customer,
        "_customer_orders": engine._customer_orders,
        "_customers": engine._customers,
        "_active": engine._active,
        "_result": engine._result,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_EMITTERS: dict[type, tuple[Callable, Callable, Callable]] = {
    PointIndexEngine: (_point_key, _point_emit, _point_bind),
    RangeIndexEngine: (_range_key, _range_emit, _range_bind),
    GroupedRangeIndexEngine: (_grouped_key, _grouped_emit, _grouped_bind),
    GeneralAlgorithmEngine: (_ga_key, _ga_emit, _ga_bind),
    ConjunctiveIndexEngine: (_conj_key, _conj_emit, _conj_bind),
    PSPRpaiEngine: (_psp_key, _psp_emit, _psp_bind),
    NQ1RpaiEngine: (_nq1_key, _nq1_emit, _nq1_bind),
    NQ2RpaiEngine: (_nq2_key, _nq2_emit, _nq2_bind),
    Q17RpaiEngine: (_q17_key, _q17_emit, _q17_bind),
    Q18RpaiEngine: (_q18_key, _q18_emit, _q18_bind),
}


def maybe_specialize(engine) -> bool:
    """Install a compiled trigger when the process-wide default says so
    (the registry/restore entry point)."""
    if not _ENABLED:
        return False
    return specialize(engine)


def specialize(engine) -> bool:
    """Compile-and-install the specialized trigger for ``engine``.

    Returns True when compiled triggers were installed; False (with the
    ``codegen.unsupported`` counter bumped) when the engine class or
    query shape has no emitter.  Installation is idempotent: the
    compiled code object is cached per (engine class, query, backend)
    key, so further engines of the same shape only pay a dict lookup
    and an ``exec`` of the cached code object.
    """
    emitters = _EMITTERS.get(type(engine))
    if emitters is None:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    key_fn, emit_fn, bind_fn = emitters
    try:
        key = key_fn(engine)
    except UnsupportedTriggerError:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    entry = _CACHE.get(key)
    if entry is _UNSUPPORTED:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    if entry is None:
        if _SINK.enabled:
            _SINK.inc("codegen.cache_misses")
        start = time.perf_counter()
        try:
            source = emit_fn(engine)
        except UnsupportedTriggerError:
            _CACHE[key] = _UNSUPPORTED
            if _SINK.enabled:
                _SINK.inc("codegen.unsupported")
            return False
        code = compile(source, f"<codegen:{key[0]}:{key[-1]}>", "exec")
        entry = _CACHE[key] = _Entry(key, source, code)
        if _SINK.enabled:
            _SINK.observe("codegen.compile_seconds", time.perf_counter() - start)
    else:
        if _SINK.enabled:
            _SINK.inc("codegen.cache_hits")
    namespace: dict[str, Any] = {"_S": _SINK, "_deopt": _rt.deopt}
    namespace.update(bind_fn(engine))
    exec(entry.code, namespace)
    # Install every trigger the emitter defined (on_event always; the
    # loop-emitting engines also generate on_batch and on_frame; the
    # hand-written-engine emitters define on_event only and inherit the
    # default batch/frame decode, which dispatches to the compiled
    # instance on_event).
    for attr in _rt._TRIGGER_ATTRS:
        trigger = namespace.get(attr)
        if trigger is not None:
            setattr(engine, attr, types.MethodType(trigger, engine))
    engine.trigger_mode = _rt.COMPILED
    engine._codegen_key = key
    if _SINK.enabled:
        _SINK.inc("codegen.installed")
    return True


def uninstall(engine) -> None:
    """Remove compiled triggers from ``engine`` (interpreted mode)."""
    _rt.uninstall(engine)


def generated_source(engine) -> str | None:
    """The trigger source compiled for ``engine``, or None when the
    engine runs interpreted."""
    key = getattr(engine, "_codegen_key", None)
    if key is None:
        return None
    entry = _CACHE.get(key)
    if entry is None or entry is _UNSUPPORTED:
        return None
    return entry.source
