"""Per-query trigger codegen: compile (query, backend) pairs to
specialized Python triggers.

The interpreted engines pay a per-event tax that has nothing to do with
the index kernels PR 3 made fast: closure chains compiled from the AST
(`_compile_row_expr`), dict-dispatched comparators (``operator.le``
behind ``_COMPARATORS``), aggregate dispatch on ``func`` strings, and —
for the adaptive backend — a dense-key re-check inside every
``AdaptiveIndex.add``.  DBToaster's lesson (PAPERS.md) is that an IVM
system earns its constant factors by *compiling* each query's trigger;
this module does exactly that for the generic engines:

* predicate tests become plain comparisons (``_k <= _g``),
* bound-variable extractors become direct row indexing (``_row['A']``),
* aggregate dispatch is monomorphized (a SUM scalar is ``.total``),
* the :class:`~repro.core.adaptive.AdaptiveIndex` backend branch is
  resolved at compile time: dense-int keys hit the Fenwick array
  directly, anything else falls through to the interpreted
  ``AdaptiveIndex.add`` (which migrates with its usual counters) and
  the trigger **deopts** back to the interpreted class methods at the
  end of the invocation (see :func:`repro.query.codegen_runtime.deopt`).

Generated source is ``compile()``'d once and cached per
``(engine class, query AST, backend)`` key — the AST nodes are frozen
dataclasses, so the key is hashable and exact.  Installation binds the
compiled functions as *instance* attributes (``engine.on_event`` /
``engine.on_batch``); the class-level interpreted triggers remain
untouched and serve as the deopt target.  The generated bodies
replicate the interpreted triggers' operation order and obs-counter
sites bit-for-bit: the differential suite asserts identical result
traces *and* identical rotation/probe counters, and the chaos/sharding
harnesses run unchanged because the quarantine prologue, WAL wrapping
(instance attributes are looked up per call) and the
``shard_partial``/``shard_probe`` class methods are preserved.

Engines pickle through their explicit ``__getstate__`` (pure data), so
compiled triggers never enter a snapshot; ``__setstate__`` re-installs
them, which is how codegen'd triggers survive the multiprocess workers'
``pickle.loads`` restore path.
"""

from __future__ import annotations

import os
import time
import types
from typing import Any, Callable

from repro.core.adaptive import MAX_DENSE_KEY, AdaptiveIndex
from repro.engine.aggr_index import PointIndexEngine, RangeIndexEngine
from repro.engine.general import GeneralAlgorithmEngine, _peel_constant_scale
from repro.obs import SINK as _SINK
from repro.query import codegen_runtime as _rt
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    Arith,
    ColumnRef,
    Comparison,
    Const,
    Expr,
    SubqueryExpr,
)
from repro.query.planner import codegen_key

__all__ = [
    "codegen_enabled",
    "set_codegen",
    "maybe_specialize",
    "specialize",
    "uninstall",
    "generated_source",
    "clear_cache",
    "UnsupportedTriggerError",
]


class UnsupportedTriggerError(Exception):
    """The engine/query shape has no specialized trigger emitter."""


def _env_default() -> bool:
    return os.environ.get("REPRO_CODEGEN", "1").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


#: Process-wide default, initialized from ``REPRO_CODEGEN`` (on unless
#: explicitly disabled).  Multiprocess shard workers inherit it via
#: fork, and the CLI's ``--no-codegen`` flips it (plus the env var, for
#: spawn-started children).
_ENABLED = _env_default()


def codegen_enabled() -> bool:
    return _ENABLED


def set_codegen(flag: bool) -> None:
    """Flip the process-wide codegen default (the CLI escape hatch)."""
    global _ENABLED
    _ENABLED = bool(flag)


class _Entry:
    __slots__ = ("key", "source", "code")

    def __init__(self, key: tuple, source: str, code: Any) -> None:
        self.key = key
        self.source = source
        self.code = code


#: key -> _Entry (or the _UNSUPPORTED sentinel for negative caching).
_CACHE: dict[tuple, Any] = {}
_UNSUPPORTED = object()


def clear_cache() -> None:
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Expression emitters
# ---------------------------------------------------------------------------


def _emit_row_expr(expr: Expr | None, alias: str, row: str) -> str:
    """Source for a single-row expression, mirroring the closure
    semantics of :func:`repro.engine.general._compile_row_expr` (same
    operators, same evaluation order)."""
    if expr is None:
        return "1"
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.relation != alias:
            raise UnsupportedTriggerError(f"column {expr} is not of alias {alias!r}")
        return f"{row}[{expr.column!r}]"
    if isinstance(expr, Arith):
        left = _emit_row_expr(expr.left, alias, row)
        right = _emit_row_expr(expr.right, alias, row)
        return f"({left} {expr.op} {right})"
    raise UnsupportedTriggerError(f"cannot emit row expression {expr!r}")


def _scalar_value_src(name: str, func: str) -> str:
    """Inline read of an ``_UncorrelatedScalar`` bound as global
    ``name`` — monomorphized on the aggregate function, matching
    ``_MaintainedAggregate.value`` exactly."""
    if func == "SUM":
        return f"{name}.aggregate.total"
    if func == "COUNT":
        return f"{name}.aggregate.count"
    if func == "AVG":
        return (
            f"({name}.aggregate.total / {name}.aggregate.count "
            f"if {name}.aggregate.count else 0)"
        )
    return f"{name}.value()"  # MIN/MAX: MinMaxView lookup stays a call


class _ScalarInfo:
    """Static description of one uncorrelated scalar subquery."""

    __slots__ = ("name", "func", "relation", "arg_src")

    def __init__(self, name: str, sub: AggrQuery) -> None:
        call = sub.select[0].expr
        if not isinstance(call, AggrCall):  # _UncorrelatedScalar enforces this
            raise UnsupportedTriggerError(f"unsupported scalar select {call}")
        self.name = name
        self.func = call.func
        self.relation = sub.relations[0].name
        alias = sub.relations[0].alias
        self.arg_src = _emit_row_expr(call.arg, alias, "_row")


def _scalar_infos(scalars: dict[AggrQuery, Any]) -> dict[AggrQuery, _ScalarInfo]:
    return {
        sub: _ScalarInfo(f"_sc{i}", sub) for i, sub in enumerate(scalars)
    }


def _emit_scalar_updates(
    lines: list[str], indent: str, infos: dict[AggrQuery, _ScalarInfo]
) -> None:
    """Per-event scalar routing, streamed exactly like the interpreted
    loop over ``_scalars.items()`` (value computed, then ``update``)."""
    for i, info in enumerate(infos.values()):
        lines.append(f"{indent}if _rel == {info.relation!r}:")
        if info.func in ("SUM", "COUNT", "AVG"):
            acc = f"_a{i}"
            lines.append(f"{indent}    {acc} = {info.name}.aggregate")
            lines.append(f"{indent}    {acc}.total += ({info.arg_src}) * _w")
            lines.append(f"{indent}    {acc}.count += _w")
        else:
            lines.append(f"{indent}    {info.name}.on_row(_row, _w)")


def _emit_fixed_expr(expr: Expr, infos: dict[AggrQuery, _ScalarInfo]) -> str:
    """The fixed probe side ``v``: constants, arithmetic and scalar
    subquery reads (mirrors ``_FixedSide.value``)."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Arith):
        left = _emit_fixed_expr(expr.left, infos)
        right = _emit_fixed_expr(expr.right, infos)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, SubqueryExpr):
        info = infos[expr.query]
        return _scalar_value_src(info.name, info.func)
    raise UnsupportedTriggerError(f"cannot emit fixed expression {expr!r}")


def _probe_src(op: str, index: str, probe: str) -> str:
    """Monomorphized ``_probe`` dispatch (repro.engine.aggr_index)."""
    if op == "=":
        return f"{index}.get({probe}, 0)"
    if op == "<":
        return f"({index}.total_sum() - {index}.get_sum({probe}, inclusive=True))"
    if op == "<=":
        return f"({index}.total_sum() - {index}.get_sum({probe}, inclusive=False))"
    if op == ">":
        return f"{index}.get_sum({probe}, inclusive=False)"
    if op == ">=":
        return f"{index}.get_sum({probe}, inclusive=True)"
    raise UnsupportedTriggerError(f"unsupported probe operator {op!r}")


# ---------------------------------------------------------------------------
# Adaptive (Fenwick) fast path
# ---------------------------------------------------------------------------

_FENWICK_PROLOGUE = ["_dense = _ai._dense", "_fw = _ai._backend"]


def _emit_index_add(
    lines: list[str], indent: str, flavor: str, key: str, delta: str
) -> None:
    """One ``aggr_index.add(key, delta)``.

    ``fenwick`` flavor resolves the AdaptiveIndex backend branch at
    compile time: plain in-range ints hit the Fenwick array directly
    (the common case for equality-correlation keys); anything else
    falls through to the full ``AdaptiveIndex.add`` — which handles
    bools, int-valued floats and migration with identical counters —
    and refreshes the hoisted backend locals.  ``key`` must be a local
    name (it is evaluated more than once).
    """
    if flavor == "fenwick":
        lines.append(
            f"{indent}if _dense and type({key}) is int "
            f"and 0 <= {key} < {MAX_DENSE_KEY}:"
        )
        lines.append(f"{indent}    if {key} >= _fw.capacity:")
        lines.append(f"{indent}        _ai._ensure_capacity({key})")
        lines.append(f"{indent}    _fw.add({key}, {delta})")
        lines.append(f"{indent}else:")
        lines.append(f"{indent}    _ai.add({key}, {delta})")
        lines.append(f"{indent}    _dense = _ai._dense")
        lines.append(f"{indent}    _fw = _ai._backend")
    else:
        lines.append(f"{indent}_ai.add({key}, {delta})")


def _emit_deopt_check(lines: list[str], indent: str, flavor: str) -> None:
    if flavor == "fenwick":
        lines.append(f"{indent}if not _ai._dense:")
        lines.append(f"{indent}    _deopt(self, 'backend_migrated')")


def _backend_flavor(index: Any) -> str:
    if isinstance(index, AdaptiveIndex):
        return "fenwick" if index._dense else "adaptive-rpai"
    return type(index).__name__.lower()


# ---------------------------------------------------------------------------
# PointIndexEngine (PAI_EQUALITY — EQ)
# ---------------------------------------------------------------------------


def _point_key(engine: PointIndexEngine) -> tuple:
    return ("point",) + codegen_key(engine._plan, _backend_flavor(engine.aggr_index))


def _point_emit(engine: PointIndexEngine) -> str:
    query = engine._plan.query
    spec = engine.spec
    alias = query.relations[0].alias
    relation = engine.relation
    flavor = _backend_flavor(engine.aggr_index)
    fenwick = flavor == "fenwick"
    infos = _scalar_infos(engine._fixed._scalars)

    cols = engine._group_cols
    if len(cols) == 1:
        group_src = f"_row[{cols[0]!r}]"
    else:
        group_src = "(" + ", ".join(f"_row[{c!r}]" for c in cols) + ")"
    inner_alias = spec.inner_col.relation
    inner_src = _emit_row_expr(spec.inner_arg, inner_alias, "_row")
    scale, call = _peel_constant_scale(query.select[0].expr)
    res_src = _emit_row_expr(call.arg, alias, "_row")
    fixed_src = _emit_fixed_expr(spec.fixed_expr, infos)
    probe = _probe_src(spec.outer_op, "_ai", "_pv")

    def apply_body(lines: list[str], indent: str) -> None:
        # Mirrors PointIndexEngine._apply_group line for line.
        lines.append(f"{indent}if _S.enabled:")
        lines.append(f"{indent}    _S.inc('engine.point_applies')")
        lines.append(f"{indent}_old_rhs = _bm.get(_group, 0)")
        lines.append(f"{indent}_old_res = _rm.get(_group, 0)")
        lines.append(f"{indent}_new_rhs = _old_rhs + _ird")
        lines.append(f"{indent}_new_res = _old_res + _res")
        lines.append(f"{indent}if _old_res != 0:")
        _emit_index_add(lines, indent + "    ", flavor, "_old_rhs", "-_old_res")
        lines.append(f"{indent}if _new_res != 0:")
        _emit_index_add(lines, indent + "    ", flavor, "_new_rhs", "_new_res")
        lines.append(f"{indent}_bm.add(_group, _ird)")
        lines.append(f"{indent}_rm.add(_group, _res)")

    def result_tail(lines: list[str]) -> None:
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        lines.append("        _S.inc('engine.result_probes')")
        lines.append(f"    _pv = {fixed_src}")
        lines.append(f"    return {scale!r} * {probe}")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    lines.append("    _ai = self.aggr_index")
    _emit_scalar_updates(lines, "    ", infos)
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _group = {group_src}")
    lines.append(f"        _ird = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _bm = self.bound_map")
    lines.append("        _rm = self.res_map")
    if fenwick:
        for stmt in _FENWICK_PROLOGUE:
            lines.append(f"        {stmt}")
    apply_body(lines, "        ")
    _emit_deopt_check(lines, "        ", flavor)
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    lines.append("    _net = {}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    lines.append(f"        if _rel != {relation!r}:")
    lines.append("            continue")
    lines.append(f"        _group = {group_src}")
    lines.append(f"        _ird = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _entry = _net.get(_group)")
    lines.append("        if _entry is None:")
    lines.append("            _net[_group] = [_ird, _res]")
    lines.append("        else:")
    lines.append("            _entry[0] += _ird")
    lines.append("            _entry[1] += _res")
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    _rm = self.res_map")
    if fenwick:
        for stmt in _FENWICK_PROLOGUE:
            lines.append(f"    {stmt}")
    lines.append("    for _group, (_ird, _res) in _net.items():")
    lines.append("        if _ird == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    _emit_deopt_check(lines, "    ", flavor)
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _point_bind(engine: PointIndexEngine) -> dict[str, Any]:
    return {
        f"_sc{i}": scalar
        for i, scalar in enumerate(engine._fixed._scalars.values())
    }


# ---------------------------------------------------------------------------
# RangeIndexEngine (RPAI_INEQUALITY — VWAP)
# ---------------------------------------------------------------------------


def _range_key(engine: RangeIndexEngine) -> tuple:
    return ("range",) + codegen_key(engine._plan, _backend_flavor(engine.aggr_index))


def _range_emit(engine: RangeIndexEngine) -> str:
    query = engine._plan.query
    spec = engine.spec
    alias = query.relations[0].alias
    relation = engine.relation
    infos = _scalar_infos(engine._fixed._scalars)

    col = repr(engine._key_col)
    key_src = f"(-_row[{col}])" if engine._key_sign == -1 else f"_row[{col}]"
    inner_alias = spec.inner_col.relation
    inner_src = _emit_row_expr(spec.inner_arg, inner_alias, "_row")
    scale, call = _peel_constant_scale(query.select[0].expr)
    res_src = _emit_row_expr(call.arg, alias, "_row")
    fixed_src = _emit_fixed_expr(spec.fixed_expr, infos)
    probe = _probe_src(spec.outer_op, "_ai", "_pv")
    inclusive_inner = engine._inclusive_inner

    def apply_body(lines: list[str], indent: str) -> None:
        # Mirrors RangeIndexEngine._apply_outer with the inclusive/
        # strict inner-θ branch resolved at compile time.
        lines.append(f"{indent}if _S.enabled:")
        lines.append(f"{indent}    _S.inc('engine.range_applies')")
        lines.append(f"{indent}_old = _bm.get(_key, 0)")
        lines.append(f"{indent}_pfx = _bm.get_sum(_key, inclusive=False)")
        if inclusive_inner:
            lines.append(f"{indent}_ai.shift_keys(_pfx, _vol, inclusive=False)")
            lines.append(f"{indent}_bm.add(_key, _vol)")
            lines.append(f"{indent}if _res != 0:")
            lines.append(f"{indent}    _ai.add(_pfx + _old + _vol, _res)")
        else:
            lines.append(
                f"{indent}_ai.shift_keys(_pfx, _vol, inclusive=_old == 0)"
            )
            lines.append(f"{indent}_bm.add(_key, _vol)")
            lines.append(f"{indent}if _res != 0:")
            lines.append(f"{indent}    _ai.add(_pfx, _res)")

    def result_tail(lines: list[str]) -> None:
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.results')")
        lines.append("        _S.inc('engine.result_probes')")
        lines.append(f"    _pv = {fixed_src}")
        lines.append(f"    return {scale!r} * {probe}")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    lines.append("    _ai = self.aggr_index")
    _emit_scalar_updates(lines, "    ", infos)
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _bm = self.bound_map")
    apply_body(lines, "        ")
    result_tail(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    lines.append("    _net = {}")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    lines.append(f"        if _rel != {relation!r}:")
    lines.append("            continue")
    lines.append(f"        _key = {key_src}")
    lines.append(f"        _vol = ({inner_src}) * _w")
    lines.append(f"        _res = ({res_src}) * _w")
    lines.append("        _entry = _net.get(_key)")
    lines.append("        if _entry is None:")
    lines.append("            _net[_key] = [_vol, _res]")
    lines.append("        else:")
    lines.append("            _entry[0] += _vol")
    lines.append("            _entry[1] += _res")
    lines.append("    _ai = self.aggr_index")
    lines.append("    _bm = self.bound_map")
    lines.append("    for _key, (_vol, _res) in _net.items():")
    lines.append("        if _vol == 0 and _res == 0:")
    lines.append("            continue")
    apply_body(lines, "        ")
    result_tail(lines)
    return "\n".join(lines) + "\n"


def _range_bind(engine: RangeIndexEngine) -> dict[str, Any]:
    return {
        f"_sc{i}": scalar
        for i, scalar in enumerate(engine._fixed._scalars.values())
    }


# ---------------------------------------------------------------------------
# GeneralAlgorithmEngine (SQ1 / SQ2)
# ---------------------------------------------------------------------------


class _CorrInfo:
    """Static description of one correlated subquery (Algorithm 3)."""

    __slots__ = ("name", "func", "relation", "theta", "g_expr",
                 "inner_key_src", "inner_arg_src", "scale")

    def __init__(
        self, name: str, sub: AggrQuery, correlated: Any, outer_alias: str
    ) -> None:
        self.name = name
        self.func = correlated.func
        if self.func not in ("SUM", "COUNT", "AVG"):
            raise UnsupportedTriggerError(
                f"correlated {self.func} needs the ordered bound map walk"
            )
        self.relation = correlated.relation
        self.theta = correlated.theta
        self.scale = correlated.scale
        inner_alias = sub.relations[0].alias
        pred = sub.where
        assert isinstance(pred, Comparison)  # _CorrelatedSubquery enforces
        f_expr, _theta, g_expr = correlated._split_predicate(
            pred, inner_alias, outer_alias
        )
        self.g_expr = g_expr
        self.inner_key_src = _emit_row_expr(f_expr, inner_alias, "_row")
        call = sub.select[0].expr
        if isinstance(call, Arith):  # constant-scaled aggregate
            _scale, call = _peel_constant_scale(call)
        assert isinstance(call, AggrCall)
        self.inner_arg_src = _emit_row_expr(call.arg, inner_alias, "_row")

    def value_src(self, g_src: str) -> str:
        """Inline of ``_CorrelatedSubquery.value(g)``."""
        scale = repr(self.scale)
        if self.func == "SUM":
            return f"({scale} * {self.name}.free_sum[{g_src}])"
        if self.func == "COUNT":
            return f"({scale} * {self.name}.free_count[{g_src}])"
        return (
            f"({scale} * (({self.name}.free_sum[{g_src}] / "
            f"{self.name}.free_count[{g_src}]) "
            f"if {self.name}.free_count[{g_src}] else 0))"
        )


def _ga_statics(engine: GeneralAlgorithmEngine):
    """Static emission inputs for the general algorithm; raises
    :class:`UnsupportedTriggerError` on shapes that need the
    interpreted paths (correlated MIN/MAX)."""
    query = engine.query
    alias = engine.alias
    infos = _scalar_infos(engine._scalars)
    corr_infos: dict[AggrQuery, _CorrInfo] = {}
    for i, (sub, correlated) in enumerate(engine._correlated.items()):
        corr_infos[sub] = _CorrInfo(f"_c{i}", sub, correlated, alias)

    def side_src(expr: Expr, row: str) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, ColumnRef):
            if expr.relation != alias:
                raise UnsupportedTriggerError(f"unexpected alias in {expr}")
            return f"{row}[{expr.column!r}]"
        if isinstance(expr, Arith):
            return (
                f"({side_src(expr.left, row)} {expr.op} "
                f"{side_src(expr.right, row)})"
            )
        if isinstance(expr, SubqueryExpr):
            if expr.query in corr_infos:
                info = corr_infos[expr.query]
                g_src = _emit_row_expr(info.g_expr, alias, row)
                return info.value_src(g_src)
            info = infos[expr.query]
            return _scalar_value_src(info.name, info.func)
        raise UnsupportedTriggerError(f"unsupported predicate operand {expr!r}")

    predicates = []
    for conjunct in query.conjuncts():
        if not isinstance(conjunct, Comparison):
            raise UnsupportedTriggerError("non-conjunctive predicate")
        op = "!=" if conjunct.op == "<>" else conjunct.op
        op = "==" if op == "=" else op
        predicates.append(
            f"({side_src(conjunct.left, '_orow')} {op} "
            f"{side_src(conjunct.right, '_orow')})"
        )
    return infos, corr_infos, predicates


def _ga_key(engine: GeneralAlgorithmEngine) -> tuple:
    return ("general", engine.query, "ga")


def _ga_emit(engine: GeneralAlgorithmEngine) -> str:
    query = engine.query
    relation = engine.relation
    alias = engine.alias
    infos, corr_infos, predicates = _ga_statics(engine)

    cols = engine._group_columns
    group_src = "(" + ", ".join(f"_row[{c!r}]" for c in cols) + ("," if len(cols) == 1 else "") + ")"
    _scale, call = _peel_constant_scale(query.select[0].expr)
    res_arg_src = _emit_row_expr(call.arg, alias, "_row")
    theta_ops = {"=": "==", "<>": "!="}

    def emit_free_pass(lines: list[str], indent: str, info: _CorrInfo,
                       val: str, wgt: str) -> None:
        op = theta_ops.get(info.theta, info.theta)
        lines.append(f"{indent}_fs = {info.name}.free_sum")
        lines.append(f"{indent}_fc = {info.name}.free_count")
        lines.append(f"{indent}for _g in _fs:")
        lines.append(f"{indent}    if _k {op} _g:")
        lines.append(f"{indent}        _fs[_g] += {val}")
        lines.append(f"{indent}        _fc[_g] += {wgt}")

    def emit_recompute(lines: list[str]) -> None:
        # Mirrors GeneralAlgorithmEngine._recompute with the predicate
        # closures unrolled to plain comparisons.
        lines.append("    if _S.enabled:")
        lines.append("        _S.inc('engine.result_recomputes')")
        lines.append("        _S.observe('engine.result_map_size', len(self._res_sum))")
        lines.append("    _total = 0")
        lines.append("    _count = 0")
        lines.append("    _rcnt = self._res_count")
        lines.append("    _rrep = self._res_repr")
        lines.append("    for _gkey, _gsum in self._res_sum.items():")
        lines.append("        _orow = _rrep[_gkey]")
        for pred in predicates:
            lines.append(f"        if not {pred}:")
            lines.append("            continue")
        lines.append("        _total += _gsum")
        lines.append("        _count += _rcnt[_gkey]")
        if engine._result_func == "SUM":
            lines.append(f"    _result = {engine._result_scale!r} * _total")
        elif engine._result_func == "COUNT":
            lines.append(f"    _result = {engine._result_scale!r} * _count")
        else:
            lines.append(
                f"    _result = {engine._result_scale!r} * "
                "(_total / _count if _count else 0)"
            )
        lines.append("    self._result = _result")
        lines.append("    return _result")

    lines: list[str] = []
    lines.append("def on_event(self, event):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.events')")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None and not guard.admit(event):")
    lines.append("        return self.result()")
    lines.append("    _rel = event.relation")
    lines.append("    _row = event.row")
    lines.append("    _w = event.weight")
    _emit_scalar_updates(lines, "    ", infos)
    for info in corr_infos.values():
        lines.append(f"    if _rel == {info.relation!r}:")
        lines.append(f"        _k = {info.inner_key_src}")
        lines.append(f"        _v = ({info.inner_arg_src}) * _w")
        lines.append(f"        {info.name}.bound_sum.add(_k, _v)")
        lines.append(f"        {info.name}.bound_count.add(_k, _w)")
        emit_free_pass(lines, "        ", info, "_v", "_w")
    lines.append(f"    if _rel == {relation!r}:")
    lines.append(f"        _key = {group_src}")
    lines.append(f"        _val = {res_arg_src}")
    lines.append("        self._apply_outer_group(_key, _val * _w, _w)")
    emit_recompute(lines)
    lines.append("")

    lines.append("def on_batch(self, events):")
    lines.append("    if _S.enabled:")
    lines.append("        _S.inc('engine.batches')")
    lines.append("        _S.observe('engine.batch_size', len(events))")
    lines.append("    guard = self._quarantine")
    lines.append("    if guard is not None:")
    lines.append("        events = guard.admit_batch(events)")
    lines.append("        if not events:")
    lines.append("            return self.result()")
    for i in range(len(corr_infos)):
        lines.append(f"    _net{i} = {{}}")
    lines.append("    _onet = {}")
    lines.append("    _oorder = []")
    lines.append("    for event in events:")
    lines.append("        _rel = event.relation")
    lines.append("        _row = event.row")
    lines.append("        _w = event.weight")
    _emit_scalar_updates(lines, "        ", infos)
    for i, info in enumerate(corr_infos.values()):
        lines.append(f"        if _rel == {info.relation!r}:")
        lines.append(f"            _k = {info.inner_key_src}")
        lines.append(f"            _v = ({info.inner_arg_src}) * _w")
        lines.append(f"            _entry = _net{i}.get(_k)")
        lines.append("            if _entry is None:")
        lines.append(f"                _net{i}[_k] = [_v, _w]")
        lines.append("            else:")
        lines.append("                _entry[0] += _v")
        lines.append("                _entry[1] += _w")
    lines.append(f"        if _rel == {relation!r}:")
    lines.append(f"            _key = {group_src}")
    lines.append(f"            _val = {res_arg_src}")
    lines.append("            _entry = _onet.get(_key)")
    lines.append("            if _entry is None:")
    lines.append("                _onet[_key] = [_val * _w, _w]")
    lines.append("                _oorder.append(_key)")
    lines.append("            else:")
    lines.append("                _entry[0] += _val * _w")
    lines.append("                _entry[1] += _w")
    lines.append("    if _S.enabled and events:")
    nets = " + ".join(
        [f"len(_net{i})" for i in range(len(corr_infos))] + ["len(_onet)"]
    )
    lines.append(f"        _S.observe('engine.batch_coalesced_keys', {nets})")
    for i, info in enumerate(corr_infos.values()):
        lines.append(f"    for _k, (_v, _wn) in _net{i}.items():")
        lines.append("        if _v == 0 and _wn == 0:")
        lines.append("            continue")
        lines.append(f"        {info.name}.bound_sum.add(_k, _v)")
        lines.append(f"        {info.name}.bound_count.add(_k, _wn)")
        emit_free_pass(lines, "        ", info, "_v", "_wn")
    lines.append("    _rcnt = self._res_count")
    lines.append("    for _key in _oorder:")
    lines.append("        _sd, _cd = _onet[_key]")
    lines.append("        if _cd == 0 and _key not in _rcnt:")
    lines.append("            continue")
    lines.append("        if _sd == 0 and _cd == 0:")
    lines.append("            continue")
    lines.append("        self._apply_outer_group(_key, _sd, int(_cd))")
    emit_recompute(lines)
    return "\n".join(lines) + "\n"


def _ga_bind(engine: GeneralAlgorithmEngine) -> dict[str, Any]:
    bindings: dict[str, Any] = {
        f"_sc{i}": scalar for i, scalar in enumerate(engine._scalars.values())
    }
    bindings.update(
        {f"_c{i}": c for i, c in enumerate(engine._correlated.values())}
    )
    return bindings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_EMITTERS: dict[type, tuple[Callable, Callable, Callable]] = {
    PointIndexEngine: (_point_key, _point_emit, _point_bind),
    RangeIndexEngine: (_range_key, _range_emit, _range_bind),
    GeneralAlgorithmEngine: (_ga_key, _ga_emit, _ga_bind),
}


def maybe_specialize(engine) -> bool:
    """Install a compiled trigger when the process-wide default says so
    (the registry/restore entry point)."""
    if not _ENABLED:
        return False
    return specialize(engine)


def specialize(engine) -> bool:
    """Compile-and-install the specialized trigger for ``engine``.

    Returns True when compiled triggers were installed; False (with the
    ``codegen.unsupported`` counter bumped) when the engine class or
    query shape has no emitter.  Installation is idempotent: the
    compiled code object is cached per (engine class, query, backend)
    key, so further engines of the same shape only pay a dict lookup
    and an ``exec`` of the cached code object.
    """
    emitters = _EMITTERS.get(type(engine))
    if emitters is None:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    key_fn, emit_fn, bind_fn = emitters
    try:
        key = key_fn(engine)
    except UnsupportedTriggerError:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    entry = _CACHE.get(key)
    if entry is _UNSUPPORTED:
        if _SINK.enabled:
            _SINK.inc("codegen.unsupported")
        return False
    if entry is None:
        if _SINK.enabled:
            _SINK.inc("codegen.cache_misses")
        start = time.perf_counter()
        try:
            source = emit_fn(engine)
        except UnsupportedTriggerError:
            _CACHE[key] = _UNSUPPORTED
            if _SINK.enabled:
                _SINK.inc("codegen.unsupported")
            return False
        code = compile(source, f"<codegen:{key[0]}:{key[-1]}>", "exec")
        entry = _CACHE[key] = _Entry(key, source, code)
        if _SINK.enabled:
            _SINK.observe("codegen.compile_seconds", time.perf_counter() - start)
    else:
        if _SINK.enabled:
            _SINK.inc("codegen.cache_hits")
    namespace: dict[str, Any] = {"_S": _SINK, "_deopt": _rt.deopt}
    namespace.update(bind_fn(engine))
    exec(entry.code, namespace)
    engine.on_event = types.MethodType(namespace["on_event"], engine)
    engine.on_batch = types.MethodType(namespace["on_batch"], engine)
    engine.trigger_mode = _rt.COMPILED
    engine._codegen_key = key
    if _SINK.enabled:
        _SINK.inc("codegen.installed")
    return True


def uninstall(engine) -> None:
    """Remove compiled triggers from ``engine`` (interpreted mode)."""
    _rt.uninstall(engine)


def generated_source(engine) -> str | None:
    """The trigger source compiled for ``engine``, or None when the
    engine runs interpreted."""
    key = getattr(engine, "_codegen_key", None)
    if key is None:
        return None
    entry = _CACHE.get(key)
    if entry is None or entry is _UNSUPPORTED:
        return None
    return entry.source
