"""Runtime support for generated triggers (see :mod:`repro.query.codegen`).

Generated trigger source never contains logic of its own beyond the
specialized trigger body; the pieces that must exist *outside* any one
compiled function — the trigger-mode constants, the deoptimization
escape hatch the generated code jumps to when a compile-time assumption
breaks, and the uninstall helper — live here so both the code generator
and the generated code can import them without cycles.
"""

from __future__ import annotations

from repro.obs import SINK as _SINK

__all__ = [
    "INTERPRETED",
    "COMPILED",
    "DEOPTED",
    "deopt",
    "uninstall",
    "picklable_state",
]

#: Trigger modes reported by ``IncrementalEngine.trigger_mode``.
INTERPRETED = "interpreted"
COMPILED = "compiled"
DEOPTED = "deopted"

_TRIGGER_ATTRS = ("on_event", "on_batch", "on_frame")

#: Instance attributes that must never enter a pickle: the compiled
#: triggers (MethodTypes over exec-namespace functions) plus the
#: codegen bookkeeping that only makes sense next to them.
_STATE_SKIP = _TRIGGER_ATTRS + ("_codegen_key", "trigger_mode")


def picklable_state(engine) -> dict:
    """``__getstate__`` helper for engines whose state is simply their
    instance ``__dict__``: everything minus the compiled-trigger
    attributes.  The matching ``__setstate__`` should restore the dict
    and call :func:`repro.query.codegen.maybe_specialize` to reinstall
    the triggers against the restored state."""
    return {
        key: value
        for key, value in engine.__dict__.items()
        if key not in _STATE_SKIP
    }


def deopt(engine, reason: str) -> None:
    """Guarded deoptimization: drop the compiled instance triggers so
    every *subsequent* call falls back to the interpreted class methods.

    Generated triggers call this at the **end** of an invocation, after
    all mutations: the compiled fast path's slow branch runs the full
    interpreted operation (e.g. ``AdaptiveIndex.add`` with its internal
    migration), so the invocation that detected the broken assumption
    has already completed correctly and nothing needs unwinding.
    """
    engine_dict = engine.__dict__
    for attr in _TRIGGER_ATTRS:
        engine_dict.pop(attr, None)
    engine.trigger_mode = DEOPTED
    if _SINK.enabled:
        _SINK.inc("codegen.deopts")
        _SINK.inc(f"codegen.deopt.{reason}")


def uninstall(engine) -> None:
    """Remove compiled triggers and restore the interpreted mode."""
    engine_dict = engine.__dict__
    for attr in _TRIGGER_ATTRS:
        engine_dict.pop(attr, None)
    engine_dict.pop("_codegen_key", None)
    engine_dict.pop("trigger_mode", None)  # fall back to the class default
