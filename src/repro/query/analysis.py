"""Query analysis: the ``free`` / ``bound`` / ``extractPredVals`` utilities
of paper Section 4.1, plus correlation and streamability checks.

For a (sub)query ``q``:

* ``free(q)`` — columns referenced inside ``q`` that belong to relations
  *not* defined inside ``q`` (i.e. the correlated columns).  For the
  VWAP query, ``free(q3) = {b.price}``.
* ``bound(q)`` — the remaining columns used in ``q``'s predicates, i.e.
  those supplied by ``q``'s own relations.  For VWAP,
  ``bound(q3) = {b2.price}``.
* ``extract_pred_values(q)`` — the nested aggregate subqueries that
  appear as predicate operands (possibly wrapped in arithmetic);
  ``extract_pred_values(q1) = {q2, q3}`` for VWAP.

These drive both the general incrementalization algorithm (which
creates free/bound maps per correlated predicate) and the Section 4.3.1
pattern matching that decides when the aggregate-index optimization
applies.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import QueryAnalysisError
from repro.query.ast import (
    AggrCall,
    AggrQuery,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    Predicate,
    SubqueryExpr,
    walk_expr,
    walk_predicates,
)

__all__ = [
    "free_columns",
    "bound_columns",
    "extract_pred_values",
    "is_correlated",
    "aggregate_calls",
    "is_streamable_query",
    "nesting_depth",
    "column_refs",
    "validate_query",
    "correlation_targets",
]


def column_refs(expr: Expr) -> Iterator[ColumnRef]:
    """Column references directly inside ``expr`` (not in subqueries)."""
    for node in walk_expr(expr):
        if isinstance(node, ColumnRef):
            yield node


def free_columns(query: AggrQuery) -> frozenset[ColumnRef]:
    """Columns referenced anywhere within ``query`` (including nested
    subqueries) whose alias is not bound by ``query`` or by the subquery
    containing the reference — i.e. the correlated columns."""
    free: set[ColumnRef] = set()

    def visit(q: AggrQuery, bound_aliases: frozenset[str]) -> None:
        scope = bound_aliases | q.aliases
        for expr in q.direct_expressions():
            for ref in column_refs(expr):
                if ref.relation not in scope:
                    free.add(ref)
        for sub in q.subqueries():
            visit(sub, scope)

    # Start with the query's own aliases *not* yet in scope so that the
    # top-level references are classified against an empty outer scope.
    visit(query, frozenset())
    # References bound by this query itself are not free.
    return frozenset(ref for ref in free if ref.relation not in query.aliases)


def _refs_relative_to(query: AggrQuery) -> Iterator[ColumnRef]:
    """All refs inside ``query`` whose alias is not defined by any
    *descendant* subquery (so they resolve at ``query`` level or above)."""

    def visit(q: AggrQuery, inner_aliases: frozenset[str]) -> Iterator[ColumnRef]:
        for expr in q.direct_expressions():
            for ref in column_refs(expr):
                if ref.relation not in inner_aliases:
                    yield ref
        for sub in q.subqueries():
            yield from visit(sub, inner_aliases | sub.aliases)

    yield from visit(query, frozenset())


def free_columns_of_alias(query: AggrQuery, alias: str) -> frozenset[ColumnRef]:
    """``free(q)`` restricted to one outer alias (the paper's
    ``free_r(q)``)."""
    return frozenset(ref for ref in free_columns(query) if ref.relation == alias)


def bound_columns(query: AggrQuery) -> frozenset[ColumnRef]:
    """Columns used in ``query``'s predicates that its own relations
    supply (the paper's ``bound``)."""
    bound: set[ColumnRef] = set()
    for pred in _own_predicates(query):
        for expr in _comparison_operands(pred):
            for ref in column_refs(expr):
                if ref.relation in query.aliases:
                    bound.add(ref)
    return frozenset(bound)


def _own_predicates(query: AggrQuery) -> Iterator[Predicate]:
    if query.where is not None:
        yield from walk_predicates(query.where)
    if query.having is not None:
        yield from walk_predicates(query.having)


def _comparison_operands(pred: Predicate) -> Iterator[Expr]:
    if isinstance(pred, Comparison):
        yield pred.left
        yield pred.right
    elif isinstance(pred, InSubquery):
        yield pred.expr


def extract_pred_values(query: AggrQuery) -> list[AggrQuery]:
    """Nested aggregate subqueries appearing in predicate operands,
    in syntactic order (the paper's ``extractPredVals``)."""
    found: list[AggrQuery] = []
    for pred in _own_predicates(query):
        for operand in _comparison_operands(pred):
            for node in walk_expr(operand):
                if isinstance(node, SubqueryExpr):
                    found.append(node.query)
        if isinstance(pred, InSubquery):
            found.append(pred.query)
    return found


def is_correlated(query: AggrQuery) -> bool:
    """True when ``query`` references columns of an enclosing query."""
    return bool(free_columns(query))


def correlation_targets(query: AggrQuery) -> frozenset[str]:
    """Aliases of the enclosing relations a subquery correlates with."""
    return frozenset(ref.relation for ref in free_columns(query))


def aggregate_calls(query: AggrQuery) -> list[AggrCall]:
    """Aggregate function applications at this query level."""
    calls: list[AggrCall] = []
    for expr in query.direct_expressions():
        for node in walk_expr(expr):
            if isinstance(node, AggrCall):
                calls.append(node)
    return calls


def is_streamable_query(query: AggrQuery) -> bool:
    """True when every aggregate in the query (and its subqueries) is a
    streamable monoid (Section 4.2.5): maintainable under both
    insertions and deletions from the running value alone."""
    if any(not call.streamable for call in aggregate_calls(query)):
        return False
    return all(is_streamable_query(sub) for sub in query.subqueries())


def nesting_depth(query: AggrQuery) -> int:
    """Maximum aggregate-subquery nesting depth (VWAP = 1, NQ1/NQ2 = 2)."""
    depths = [nesting_depth(sub) for sub in query.subqueries()]
    return 1 + max(depths) if depths else 0


def validate_query(query: AggrQuery) -> None:
    """Reject queries with unresolvable column references.

    Raises:
        QueryAnalysisError: if any column's alias cannot be resolved in
            the query's scope chain.
    """

    def visit(q: AggrQuery, scope: frozenset[str]) -> None:
        inner = scope | q.aliases
        for expr in q.direct_expressions():
            for ref in column_refs(expr):
                if ref.relation not in inner:
                    raise QueryAnalysisError(
                        f"column {ref} references alias {ref.relation!r} "
                        f"which is not in scope {sorted(inner)}"
                    )
        for sub in q.subqueries():
            visit(sub, inner)

    visit(query, frozenset())
