"""Opt-in observability: operation counters, timers and invariant
self-checks for the RPAI structures and engines.

The paper's complexity claims (Section 3: O(log n) ``get``/``put``/
``add``/``delete``/``get_sum``, O((1 + v) log n) negative
``shift_keys`` with v <= 1 in the aggregate-usage case of
Section 3.2.4) are asserted by wall-clock benchmarks only; nothing in a
timing curve says *why* a run was slow.  This module counts the
operations those bounds are stated in — tree rotations, ``fixTree``
violation repairs, shift directions and magnitudes, PAI-map scans,
engine events/batches and result refreshes — so a regression that
quietly turns a log-time path linear shows up as a counter, not as a
vibe.

Design constraints:

* **Zero overhead when disabled.**  There is a single module-level sink
  (:data:`SINK`); every instrumentation site is guarded by exactly one
  attribute check (``if SINK.enabled:``) and does nothing else when the
  sink is off.  No wrapper objects sit on the hot path.
* **Plain data out.**  :meth:`ObsSink.snapshot` returns nested dicts of
  ints/floats that serialize to standard JSON (no ``Infinity``/``NaN``),
  so benchmark reports can embed them directly.

Enabling:

* counters — :func:`enable` / :func:`disable`, or ``REPRO_OBS=1`` in
  the environment at import time;
* invariant self-checks — :func:`enable_selfcheck` /
  :func:`disable_selfcheck`, or ``REPRO_SELFCHECK=1``.  With
  self-checks on, every public mutating operation on
  :class:`~repro.core.rpai.RPAITree`, :class:`~repro.trees.treemap.TreeMap`
  and :class:`~repro.core.pai_map.PAIMap` re-validates the structure's
  invariants (BST order, AVL height, subtree sums, min/max offsets,
  total consistency) — O(n) per operation, meant for test runs
  (CI runs the suite once with ``REPRO_SELFCHECK=1``).

Counter naming convention (``<structure or layer>.<operation>``):

======================================  =======================================
``rpai.put/add/delete/get_sum``         public RPAITree calls
``rpai.rotations``                      AVL rotations (left + right)
``rpai.shift_keys.pos/.neg``            shifts by direction
``rpai.fix_tree``                       ``fixTree`` repair passes (Algorithm 2)
``rpai.violations``                     BST violators extracted and re-inserted
``rpai.freelist.hits/.misses``          node allocations served from / past
                                        the recycled-node pool
``treemap.rotations``                   TreeMap AVL rotations
``treemap.shift_keys``                  O(n) collect-and-rebuild shifts
``treemap.freelist.hits/.misses``       TreeMap node-pool allocations
``shard.merges``                        sharded-executor result merges
``shard.frames_shipped``                columnar frames sent to shard workers
``shard.bytes_shipped``                 encoded frame bytes through the
                                        shared-memory rings (wire footprint)
``shard.plan_degenerate``               range plans whose quantile cuts
                                        collapsed (router shrank)
``shard.plan_shards_lost``              shards lost to collapsed cuts, summed
                                        over degenerate plans
``paimap.shift_keys``                   O(n) hash rebuild shifts
``segment.grows``                       segment-tree universe doublings
``segment.shift_rebuilds``              segment-tree collect-and-replay shifts
``btree.shift_rebuilds``                RPAIBTree rightmost-path rebuild merges
``backend.<name>_selected``             adaptive indexes starting on <name>
                                        (``fenwick``, ``rpai``, ...)
``backend.migrations``                  adaptive runtime backend migrations
``backend.migration.<reason>``          migrations by cause (``non_dense_key``,
                                        ``shift_keys`` or ``redecision``)
``backend.decision.checks``             periodic cost-model re-decisions run
``backend.decision.hold``               re-decisions that kept the backend
                                        (hysteresis or already cheapest)
``backend.decision.migrate``            re-decisions that switched backends
``backend.<name>_grows``                dense-universe doubling events, by
                                        live backend
``engine.events/.batches/.results``     trigger calls / batch calls / refreshes
``engine.quarantined``                  schema-violating events diverted by the
                                        validation boundary
``wal.appends/.snapshots``              write-ahead-log records / checkpoints
                                        written
``wal.recoveries``                      snapshot+tail-replay recoveries
``wal.tail_truncated``                  torn/corrupt WAL tails healed on open
``wal.snapshot_corrupt``                snapshot files skipped on bad CRC
``supervisor.worker_failures``          shard-worker deaths/timeouts detected
``supervisor.respawns``                 workers respawned and restored
``supervisor.degraded``                 falls back to the serial executor after
                                        the respawn budget
``faults.drops/.duplicates``            injected message losses / duplications
``faults.snapshot_corruptions``         injected snapshot-file corruptions
``faults.bad_events``                   injected schema-violating events
``faults.net_disconnects``              injected mid-stream client aborts
``faults.net_stalls``                   injected reader stalls (slow consumer)
``faults.net_bad_frames``               injected garbled/truncated wire frames
``faults.net_tenant_restarts``          injected tenant kill + WAL restarts
``serve.connections``                   client connections accepted
``serve.ingested``                      ingest batches applied to a tenant
``serve.shed``                          ingest batches dropped by the
                                        ``shed-newest`` queue policy
``serve.backpressure_waits``            ingests that blocked on a full queue
                                        (``block`` policy)
``serve.disconnects``                   connections dropped by the
                                        ``disconnect`` overflow policy
``serve.evicted``                       subscriptions evicted for ACK lag
                                        past ``subscriber_buffer``
``serve.deltas_sent/.snapshots_sent``   result deltas / full snapshots fanned
                                        out to subscribers
``serve.resumes``                       re-subscriptions served by contiguous
                                        delta-log replay (vs fresh snapshot)
``serve.dedup_skips``                   duplicate ``(session, seq)`` ingests
                                        acknowledged without re-applying
``serve.bad_frames``                    malformed frames that closed their
                                        connection
``serve.idle_closed``                   connections reaped by the heartbeat
                                        idle timeout
``serve.tenant_failures``               tenants isolated after an engine crash
``serve.tenant_restarts``               tenants recovered from their WAL
``selfcheck.validations``               invariant walks performed
``codegen.cache_hits/.cache_misses``    specialized-trigger source served from
                                        / compiled past the (query, backend)
                                        cache
``codegen.installed``                   compiled triggers bound onto engines
``codegen.unsupported``                 engines with no emitter left
                                        interpreted (counted no-op)
``codegen.deopts``                      compiled triggers torn down at runtime
``codegen.deopt.<reason>``              deopts by cause (``backend_migrated``)
======================================  =======================================

Value distributions (count/total/min/max, via :meth:`ObsSink.observe`):
``rpai.shift_magnitude``, ``rpai.neg_shift_violations`` (violators per
negative shift — the Section 3.2.4 quantity), ``treemap.shift_moved``,
``paimap.shift_scanned``, ``paimap.get_sum_scanned``,
``engine.batch_size``, ``rpai.freelist.depth`` / ``treemap.freelist.depth``
(pool depth after each release — ``max`` is the high-water mark),
``shard.batch_size`` (per-shard routed chunk sizes), ``shard.skew``
(largest shard's share of a routed batch, normalized so 1.0 = even),
``shard.merge_seconds``, ``shard.encode_seconds`` (wall-clock per
frame encode on the ship path),
``wal.record_events`` (events per WAL record),
``wal.records_replayed`` (log-tail length per recovery),
``wal.truncated_bytes`` (garbage removed per tail heal),
``codegen.compile_seconds`` (wall-clock per trigger compilation —
cache hits pay none of it), ``serve.fanout`` (subscribers reached per
delta broadcast) and ``serve.queue_depth`` (tenant ingest-queue depth
sampled at each enqueue).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ObsSink",
    "SINK",
    "SELFCHECK",
    "enable",
    "disable",
    "enabled",
    "reset",
    "snapshot",
    "enable_selfcheck",
    "disable_selfcheck",
    "selfcheck_enabled",
    "diff_snapshots",
    "derived_metrics",
]


class ObsSink:
    """Collects named counters and value distributions.

    ``counters`` maps name -> int count; ``stats`` maps name ->
    ``[count, total, min, max]`` (updated by :meth:`observe`).  All
    methods are unconditional — callers guard with ``sink.enabled`` so
    the disabled path is one attribute check.
    """

    __slots__ = ("enabled", "counters", "stats")

    def __init__(self) -> None:
        self.enabled = False
        self.counters: dict[str, int] = {}
        self.stats: dict[str, list[float]] = {}

    def inc(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a value distribution."""
        entry = self.stats.get(name)
        if entry is None:
            self.stats[name] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; records seconds as the ``name`` distribution."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def reset(self) -> None:
        self.counters.clear()
        self.stats.clear()

    def snapshot(self) -> dict:
        """Plain-data copy: ``{"counters": {...}, "stats": {...}}``.

        Stats entries carry ``count``/``total``/``min``/``max``/``mean``.
        Everything is a finite int/float — safe for strict JSON.
        """
        return {
            "counters": dict(self.counters),
            "stats": {
                name: {
                    "count": entry[0],
                    "total": entry[1],
                    "min": entry[2],
                    "max": entry[3],
                    "mean": entry[1] / entry[0] if entry[0] else 0.0,
                }
                for name, entry in self.stats.items()
            },
        }


class _Flag:
    """A mutable on/off switch readable with one attribute check."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The module-level sink every instrumentation site reports to.  Its
#: identity never changes; only ``SINK.enabled`` flips.
SINK = ObsSink()

#: Invariant self-check switch (see module docstring).
SELFCHECK = _Flag()


def enable() -> None:
    """Turn counter collection on (idempotent)."""
    SINK.enabled = True


def disable() -> None:
    SINK.enabled = False


def enabled() -> bool:
    return SINK.enabled


def reset() -> None:
    """Clear all collected counters and distributions."""
    SINK.reset()


def snapshot() -> dict:
    """Shorthand for ``SINK.snapshot()``."""
    return SINK.snapshot()


def enable_selfcheck() -> None:
    """Turn structure invariant self-checks on (idempotent)."""
    SELFCHECK.enabled = True


def disable_selfcheck() -> None:
    SELFCHECK.enabled = False


def selfcheck_enabled() -> bool:
    return SELFCHECK.enabled


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


if _env_truthy("REPRO_OBS"):  # pragma: no cover - exercised via subprocess tests
    SINK.enabled = True
if _env_truthy("REPRO_SELFCHECK"):
    SELFCHECK.enabled = True


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-window delta between two :meth:`ObsSink.snapshot` results.

    Counter deltas are plain subtraction; stats deltas subtract
    count/total (min/max are not meaningful per-window and are reported
    from ``after`` as running extremes).  Names absent from ``before``
    count from zero.  Zero-delta entries are dropped so per-sample
    ``ops`` blocks stay small.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    stats = {}
    for name, entry in after.get("stats", {}).items():
        prev = before.get("stats", {}).get(name, {"count": 0, "total": 0.0})
        count = entry["count"] - prev["count"]
        if count:
            total = entry["total"] - prev["total"]
            stats[name] = {
                "count": count,
                "total": total,
                "mean": total / count,
                "running_min": entry["min"],
                "running_max": entry["max"],
            }
    return {"counters": counters, "stats": stats}


def derived_metrics(snap: dict, *, events: int | None = None) -> dict:
    """Headline ratios for a snapshot: the quantities the paper's bounds
    are stated in.

    Returns (omitting entries whose denominator is zero — never emits
    ``inf``/``NaN``):

    * ``rotations_per_update`` — ``rpai.rotations`` over ``events``;
      Section 3 predicts this bounded by c * log2(n).
    * ``violations_per_negative_shift`` and
      ``max_violations_single_shift`` — the Section 3.2.4 ``v``
      (expected <= 1 in the aggregate-usage case).
    * ``events``/``batches``/``results`` — engine-level totals.
    """
    counters = snap.get("counters", {})
    stats = snap.get("stats", {})
    out: dict[str, float] = {}
    if events is None:
        events = counters.get("engine.events", 0)
    if events:
        out["rotations_per_update"] = counters.get("rpai.rotations", 0) / events
    neg = stats.get("rpai.neg_shift_violations")
    if neg and neg["count"]:
        out["negative_shifts"] = neg["count"]
        out["violations_per_negative_shift"] = neg["total"] / neg["count"]
        out["max_violations_single_shift"] = neg.get("max", neg.get("running_max", 0))
    for key in ("engine.events", "engine.batches", "engine.results"):
        if counters.get(key):
            out[key.split(".", 1)[1]] = counters[key]
    return out
