"""Core contribution of the paper: aggregate indexes.

* :class:`~repro.core.pai_map.PAIMap` — hash-based Partial Aggregate
  Index (Section 2.1.3).
* :class:`~repro.core.rpai.RPAITree` — Relative Partial Aggregate Index
  tree (Section 3) with O(log n) ``get_sum`` and ``shift_keys``.
* :class:`~repro.core.reference_index.ReferenceIndex` — brute-force
  oracle used by the differential tests.
"""

from repro.core.interfaces import AggregateIndex
from repro.core.minmax import MinMaxView, OrderedMultiset
from repro.core.pai_map import PAIMap
from repro.core.reference_index import ReferenceIndex
from repro.core.rpai import RPAITree

__all__ = [
    "AggregateIndex",
    "PAIMap",
    "RPAITree",
    "ReferenceIndex",
    "OrderedMultiset",
    "MinMaxView",
]
