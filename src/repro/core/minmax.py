"""MIN/MAX maintenance under deletions (paper Section 4.2.5).

SUM/COUNT/AVG are *streamable*: the new aggregate follows from the old
value and the delta.  MIN/MAX are not — after deleting the current
minimum, the next minimum is unrecoverable from the scalar alone.  The
paper sketches the fix: "keep a binary search tree of the data instead
of storing just the aggregate value ... remove the corresponding value
from the tree and retrieve the next maximum or minimum value in
logarithmic time".

:class:`OrderedMultiset` is that tree (a count-augmented TreeMap), and
:class:`MinMaxView` wraps it as a maintained MIN/MAX aggregate the
engines can use wherever a streamable scalar would go.
"""

from __future__ import annotations

from repro.errors import EngineStateError
from repro.trees.treemap import TreeMap

__all__ = ["OrderedMultiset", "MinMaxView"]


class OrderedMultiset:
    """A multiset of comparable values with O(log n) extremes.

    Backed by the balanced TreeMap with counts as values, so duplicate
    values are tracked exactly (the update streams routinely carry
    duplicate prices/volumes).
    """

    __slots__ = ("_counts", "_size")

    def __init__(self) -> None:
        self._counts = TreeMap(prune_zeros=True)
        self._size = 0

    def add(self, value: float, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self._counts.add(value, count)
        self._size += count

    def remove(self, value: float, count: int = 1) -> None:
        """Remove ``count`` occurrences.

        Raises:
            ValueError: when ``count`` is not positive (a non-positive
                count would silently corrupt ``_size``).
            EngineStateError: when fewer than ``count`` are present.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        present = self._counts.get(value, 0)
        if present < count:
            raise EngineStateError(
                f"removing {count} x {value!r} but only {present} present"
            )
        self._counts.add(value, -count)
        self._size -= count

    def count(self, value: float) -> int:
        return int(self._counts.get(value, 0))

    def min(self) -> float:
        """Smallest value; raises KeyError when empty."""
        return self._counts.min_key()

    def max(self) -> float:
        """Largest value; raises KeyError when empty."""
        return self._counts.max_key()

    def count_le(self, value: float, *, inclusive: bool = True) -> int:
        """Number of elements ``<= value`` (``< value`` if exclusive)."""
        return int(self._counts.get_sum(value, inclusive=inclusive))

    def items(self):
        """Yield ``(value, count)`` pairs in ascending value order."""
        for value, count in self._counts.items():
            yield value, int(count)

    def merge(self, other: "OrderedMultiset") -> None:
        """Multiset union: fold every occurrence of ``other`` into
        ``self``.  This is the MIN/MAX merge law of the sharded
        execution layer — extremes of disjoint shards combine by
        unioning the underlying multisets, which stays correct under
        deletions (each shard retracts only its own occurrences)."""
        for value, count in other.items():
            self.add(value, count)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, value: float) -> bool:
        return self._counts.get(value, 0) > 0


class MinMaxView:
    """A MIN or MAX aggregate maintained under inserts *and* deletes.

    Drop-in replacement for the streamable-scalar accumulators: feed it
    ``update(value, weight)`` per tuple, read ``value()``.  Empty input
    yields ``default`` (0, matching the engines' empty-aggregate
    convention).
    """

    __slots__ = ("func", "_values", "default")

    def __init__(self, func: str, *, default: float = 0) -> None:
        if func not in {"MIN", "MAX"}:
            raise ValueError(f"MinMaxView handles MIN/MAX, got {func!r}")
        self.func = func
        self.default = default
        self._values = OrderedMultiset()

    def update(self, value: float, weight: int) -> None:
        if weight > 0:
            self._values.add(value, weight)
        elif weight < 0:
            self._values.remove(value, -weight)

    def value(self) -> float:
        if not self._values:
            return self.default
        return self._values.min() if self.func == "MIN" else self._values.max()

    def merge(self, other: "MinMaxView") -> None:
        """Fold another view's multiset into this one (shard merge).

        Raises:
            EngineStateError: when the views maintain different
                aggregates — merging a MIN into a MAX is meaningless.
        """
        if other.func != self.func:
            raise EngineStateError(
                f"cannot merge a {other.func} view into a {self.func} view"
            )
        self._values.merge(other._values)

    def __len__(self) -> int:
        return len(self._values)
