"""Picklable backend factories for the engines' ``index_cls`` slot.

The engines treat ``index_cls`` as a class-like object: they call it
with ``index_cls(prune_zeros=True)``, warm-start through
``index_cls.bulk_load(items, prune_zeros=True)``, and **pickle it**
inside engine state (checkpoints, WAL snapshots, shard workers).  The
backend selector needs to hand them *configured* choices — "an
AdaptiveIndex that starts on the segment tree and falls back to the
B-tree" — and a dynamically created class or a closure would break the
pickle contract.  :class:`BackendFactory` is the module-level,
spec-string-addressed stand-in: instances pickle by class + spec and
compare equal by spec, so engine state round-trips across processes
and restarts.

Spec grammar::

    "rpai"                          # a raw backend from BACKEND_CLASSES
    "adaptive"                      # AdaptiveIndex with default pair
    "adaptive:fenwick->rpai"        # AdaptiveIndex, dense->sparse pair
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.adaptive import (
    BACKEND_CLASSES,
    DENSE_BACKENDS,
    SPARSE_BACKENDS,
    AdaptiveIndex,
)

__all__ = ["BackendFactory", "parse_spec"]


def parse_spec(spec: str) -> tuple[str, str | None, str | None]:
    """Validate ``spec`` → ``(base, dense, sparse)``; raises ValueError."""
    if spec == "adaptive":
        return ("adaptive", "fenwick", "rpai")
    if spec.startswith("adaptive:"):
        pair = spec[len("adaptive:") :]
        dense, sep, sparse = pair.partition("->")
        if not sep or dense not in DENSE_BACKENDS or sparse not in SPARSE_BACKENDS:
            raise ValueError(f"bad adaptive spec {spec!r}")
        return ("adaptive", dense, sparse)
    if spec in BACKEND_CLASSES:
        return (spec, None, None)
    raise ValueError(f"unknown backend spec {spec!r}")


class BackendFactory:
    """Class-like callable building the backend a spec string names."""

    __slots__ = ("spec", "_base", "_dense", "_sparse")

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self._base, self._dense, self._sparse = parse_spec(spec)

    def __call__(self, *, prune_zeros: bool = False) -> Any:
        if self._base == "adaptive":
            return AdaptiveIndex(
                prune_zeros=prune_zeros, dense=self._dense, sparse=self._sparse
            )
        return BACKEND_CLASSES[self._base](prune_zeros=prune_zeros)

    def bulk_load(
        self,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> Any:
        if self._base == "adaptive":
            return AdaptiveIndex.bulk_load(
                sorted_items,
                prune_zeros=prune_zeros,
                dense=self._dense,
                sparse=self._sparse,
            )
        return BACKEND_CLASSES[self._base].bulk_load(
            sorted_items, prune_zeros=prune_zeros
        )

    # Engine state pickles the factory; spec is the whole identity.
    def __reduce__(self):
        return (BackendFactory, (self.spec,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BackendFactory) and other.spec == self.spec

    def __hash__(self) -> int:
        return hash((BackendFactory, self.spec))

    @property
    def __name__(self) -> str:  # engines log index_cls.__name__
        return f"BackendFactory({self.spec})"

    def __repr__(self) -> str:
        return f"BackendFactory({self.spec!r})"
