"""PAI Maps: hash-based Partial Aggregate Indexes (paper Section 2.1.3).

A PAI Map is an ordinary hash map whose *keys are aggregate values* and
whose values are the partial result aggregates the query needs.  For
queries whose correlated subquery uses only **equality** predicates
(Example 2.1), PAI Maps alone fully incrementalize the query in O(1)
per update: a tuple insertion moves exactly one aggregate key, which is
a pair of hash-map updates (Figure 1c).

For **inequality** predicates (Example 2.2), PAI Maps still work but
``get_sum`` and ``shift_keys`` must iterate over all keys, giving O(n)
per update — better than DBToaster's O(n^2), and the stepping stone to
the O(log n) RPAI tree of Section 3.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK

__all__ = ["PAIMap"]


class PAIMap:
    """Hash-map Partial Aggregate Index.

    Implements the full :class:`~repro.core.interfaces.AggregateIndex`
    protocol.  ``get``/``put``/``add``/``delete`` are amortized O(1);
    ``get_sum``/``shift_keys`` and the ordered helpers are O(n) or
    O(n log n) because a hash map has no key order.

    Args:
        prune_zeros: when True, entries whose value becomes exactly 0
            after :meth:`add` or :meth:`shift_keys` are removed.  The
            engines enable this so the index size tracks the number of
            *live* aggregate groups rather than the number of updates.
    """

    __slots__ = ("_data", "prune_zeros", "_total")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._data: dict[float, float] = {}
        self._total: float = 0
        self.prune_zeros = prune_zeros

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "PAIMap":
        """Build a map from key-sorted ``(key, value)`` pairs in O(n).

        A hash map has no key order, but the sorted-unique-keys contract
        is shared with :meth:`RPAITree.bulk_load` /
        :meth:`TreeMap.bulk_load` so the three index implementations
        stay drop-in interchangeable on the warm-start path.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        index = cls(prune_zeros=prune_zeros)
        previous: float | None = None
        for key, value in sorted_items:
            if previous is not None and previous >= key:
                raise ValueError(
                    f"bulk_load requires strictly increasing keys, got "
                    f"{previous!r} before {key!r}"
                )
            previous = key
            if prune_zeros and value == 0:
                continue
            index._data[key] = value
            index._total += value
        if _SELF.enabled:
            index.check_invariants()
        return index

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        return self._data.get(key, default)

    def put(self, key: float, value: float) -> None:
        self._total += value - self._data.get(key, 0)
        self._data[key] = value
        if self.prune_zeros and value == 0:
            del self._data[key]
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        new = self._data.get(key, 0) + delta
        self._total += delta
        if self.prune_zeros and new == 0:
            self._data.pop(key, None)
        else:
            self._data[key] = new
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        if key not in self._data:
            raise KeyError(key)
        value = self._data.pop(key)
        self._total -= value
        if _SELF.enabled:
            self.check_invariants()
        return value

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        """O(n) scan over all keys (the paper's ``getSum`` for hash maps)."""
        if _SINK.enabled:
            _SINK.inc("paimap.get_sum")
            _SINK.observe("paimap.get_sum_scanned", len(self._data))
        if inclusive:
            return sum(v for k, v in self._data.items() if k <= key)
        return sum(v for k, v in self._data.items() if k < key)

    def total_sum(self) -> float:
        return self._total

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """O(n) rebuild shifting qualifying keys; collisions merge by +."""
        if delta == 0:
            return
        if _SINK.enabled:
            _SINK.inc("paimap.shift_keys")
            _SINK.observe("paimap.shift_scanned", len(self._data))
        shifted: dict[float, float] = {}
        for k, v in self._data.items():
            qualifies = k >= key if inclusive else k > key
            nk = k + delta if qualifies else k
            shifted[nk] = shifted.get(nk, 0) + v
        if self.prune_zeros:
            shifted = {k: v for k, v in shifted.items() if v != 0}
        self._data = shifted
        self._total = sum(shifted.values())
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers (all O(n) or O(n log n)) ----------------------

    def min_key(self) -> float:
        if not self._data:
            raise KeyError("empty index")
        return min(self._data)

    def max_key(self) -> float:
        if not self._data:
            raise KeyError("empty index")
        return max(self._data)

    def successor(self, key: float) -> float | None:
        candidates = [k for k in self._data if k > key]
        return min(candidates) if candidates else None

    def predecessor(self, key: float) -> float | None:
        candidates = [k for k in self._data if k < key]
        return max(candidates) if candidates else None

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        running = 0.0
        for k in sorted(self._data):
            running += self._data[k]
            if running > threshold:
                return k
        return None

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        for k in sorted(self._data):
            above = k >= lo if lo_inclusive else k > lo
            below = k <= hi if hi_inclusive else k < hi
            if above and below:
                yield (k, self._data[k])

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        yield from sorted(self._data.items())

    def unordered_items(self) -> Iterator[tuple[float, float]]:
        """Hash-order iteration, O(n) without the sort; for scans where
        order does not matter (e.g. DBToaster-style loops)."""
        yield from self._data.items()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: float) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"PAIMap({{{entries}}})"

    # -- validation (tests / self-check mode) -----------------------------------

    def validate(self) -> None:
        """Public invariant self-check (alias of :meth:`check_invariants`);
        runs automatically per mutation under ``REPRO_SELFCHECK=1``."""
        self.check_invariants()

    def check_invariants(self) -> None:
        """Verify the maintained total against the stored entries and the
        ``prune_zeros`` discipline (no dead zero-valued keys).

        The total is maintained incrementally (O(1) per update), so a
        drift here means a missed or double-applied delta; the tolerance
        absorbs ordinary float round-off on float-valued workloads.
        """
        if _SINK.enabled:
            _SINK.inc("selfcheck.validations")
        actual = sum(self._data.values())
        assert math.isclose(
            self._total, actual, rel_tol=1e-9, abs_tol=1e-6
        ), f"total drift: maintained {self._total}, actual {actual}"
        if self.prune_zeros:
            dead = [k for k, v in self._data.items() if v == 0]
            assert not dead, f"prune_zeros map holds zero-valued keys {dead}"
