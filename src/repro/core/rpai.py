"""RPAI trees: Relative Partial Aggregate Indexes (paper Section 3).

An RPAI tree is a balanced binary search tree keyed by aggregate values
in which every node stores its key **relative to its parent**: the
actual key of a node is the sum of the stored keys along the path from
the root.  This single representational twist is what makes
``shift_keys`` logarithmic — adding ``d`` to one node's stored key
implicitly shifts the keys of its entire subtree (Section 3.2.1).

Each node additionally maintains:

``sum``
    the sum of the values in its subtree, which makes the prefix-sum
    query ``get_sum(k)`` logarithmic (Section 3.1, Figure 3);
``min_off`` / ``max_off``
    the minimum / maximum actual key in its subtree expressed as an
    offset from the node's *own* actual key.  These correspond to the
    paper's ``minKey``/``maxKey`` attributes (Section 3.2.3) but are
    stored frame-free, so they never need adjusting when the node's own
    stored key changes; they are used to detect BST violations after a
    negative shift.

Balancing: the paper balances with Left-Leaning Red-Black trees and
notes the scheme is interchangeable ("the same principles would apply
to B-trees as well", Section 3.2.5).  This implementation balances with
AVL rotations — the rotations carry the relative keys, subtree sums and
min/max offsets through exactly as Section 3.2.5 requires, and AVL's
delete is easier to verify exhaustively.  Heights, and therefore every
complexity bound in the paper, are identical up to constants.

Complexities (n = number of entries):

* ``get`` / ``put`` / ``add`` / ``delete`` — O(log n)
* ``get_sum`` / ``successor`` / ``first_key_with_prefix_above`` — O(log n)
* ``shift_keys`` with positive offset — O(log n)  (Algorithm 1)
* ``shift_keys`` with negative offset — O((1 + v) log n) where ``v`` is
  the number of BST-order violations repaired (Algorithm 2).  In the
  aggregate-maintenance special case of Section 3.2.4 (monotone keys,
  offset bounded by the deleted tuple's contribution) ``v <= 1``, so
  deletion-driven shifts stay logarithmic.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK

__all__ = ["RPAITree", "RPAINode"]


class RPAINode:
    """A single tree node.  All fields are package-internal.

    Attributes:
        key: key relative to the parent's actual key (the root's key is
            relative to zero, i.e. absolute).
        value: the stored partial aggregate.
        sum: sum of ``value`` over this subtree.
        min_off: (minimum actual key in subtree) - (this node's actual key).
        max_off: (maximum actual key in subtree) - (this node's actual key).
        height: AVL height (leaf = 1).
    """

    __slots__ = ("key", "value", "sum", "min_off", "max_off", "height", "left", "right")

    def __init__(self, key: float, value: float) -> None:
        self.key = key
        self.value = value
        self.sum = value
        self.min_off: float = 0
        self.max_off: float = 0
        self.height = 1
        self.left: RPAINode | None = None
        self.right: RPAINode | None = None


def _height(node: RPAINode | None) -> int:
    return node.height if node is not None else 0


def _update(node: RPAINode) -> None:
    """Recompute the derived fields of ``node`` from its children.

    Children must already be up to date.  ``min_off``/``max_off`` are
    offsets from the node's own actual key, so they depend only on the
    children's stored (relative) keys and offsets.
    """
    left, right = node.left, node.right
    height = 1
    total = node.value
    if left is not None:
        if left.height >= height:
            height = left.height + 1
        total += left.sum
    if right is not None:
        if right.height >= height:
            height = right.height + 1
        total += right.sum
    node.height = height
    node.sum = total
    node.min_off = left.key + left.min_off if left is not None else 0
    node.max_off = right.key + right.max_off if right is not None else 0


def _rotate_left(h: RPAINode) -> RPAINode:
    """Left rotation carrying relative keys: ``x = h.right`` becomes the
    subtree root.  Key adjustments re-express every moved node's key in
    its *new* parent's frame (see docs/rpai_internals.md for the derivation)."""
    if _SINK.enabled:
        _SINK.inc("rpai.rotations")
    x = h.right
    assert x is not None
    xk = x.key
    h.right = x.left
    if h.right is not None:
        h.right.key += xk
    x.key += h.key
    h.key = -xk
    x.left = h
    _update(h)
    _update(x)
    return x


def _rotate_right(h: RPAINode) -> RPAINode:
    """Mirror image of :func:`_rotate_left` with ``x = h.left``."""
    if _SINK.enabled:
        _SINK.inc("rpai.rotations")
    x = h.left
    assert x is not None
    xk = x.key
    h.left = x.right
    if h.left is not None:
        h.left.key += xk
    x.key += h.key
    h.key = -xk
    x.right = h
    _update(h)
    _update(x)
    return x


def _rebalance(node: RPAINode) -> RPAINode:
    """Standard AVL rebalancing step; also refreshes derived fields."""
    _update(node)
    balance = _height(node.left) - _height(node.right)
    if balance > 1:
        left = node.left
        assert left is not None
        if _height(left.left) < _height(left.right):
            node.left = _rotate_left(left)
        return _rotate_right(node)
    if balance < -1:
        right = node.right
        assert right is not None
        if _height(right.right) < _height(right.left):
            node.right = _rotate_right(right)
        return _rotate_left(node)
    return node


def _balance_any(node: RPAINode | None) -> RPAINode | None:
    """Restore the AVL property at ``node`` when its children are valid
    AVL trees of *arbitrary* height difference.

    Negative ``shift_keys`` repairs (Algorithm 2's ``fixTree``) can
    change a subtree's height by more than one, so the single-step
    :func:`_rebalance` used by put/delete is not sufficient on the way
    back up.  This is the classical AVL concatenation repair: rotate the
    heavy side up and recursively re-balance the demoted child; the
    height gap shrinks at every level, so the cost is
    O(gap * log n).
    """
    if node is None:
        return None
    _update(node)
    while True:
        left_h = _height(node.left)
        right_h = _height(node.right)
        if left_h - right_h > 1:
            left = node.left
            assert left is not None
            if _height(left.right) > _height(left.left):
                node.left = _rotate_left(left)
            node = _rotate_right(node)
            node.right = _balance_any(node.right)
            _update(node)
        elif right_h - left_h > 1:
            right = node.right
            assert right is not None
            if _height(right.left) > _height(right.right):
                node.right = _rotate_right(right)
            node = _rotate_left(node)
            node.left = _balance_any(node.left)
            _update(node)
        else:
            return node


def _min_entry(node: RPAINode) -> tuple[float, float]:
    """(key, value) of the minimum entry of ``node``'s subtree; the key
    is expressed relative to ``node``'s parent frame."""
    rel = node.key
    while node.left is not None:
        node = node.left
        rel += node.key
    return rel, node.value


def _max_entry(node: RPAINode) -> tuple[float, float]:
    """(key, value) of the maximum entry, key relative to the parent frame."""
    rel = node.key
    while node.right is not None:
        node = node.right
        rel += node.key
    return rel, node.value


def _build_relative(
    items: list[tuple[float, float]], lo: int, hi: int, parent_actual: float
) -> RPAINode | None:
    """Midpoint-recursive build of a relative-key subtree over
    ``items[lo:hi]``; ``parent_actual`` is the actual key of the frame
    the subtree root's stored key must be expressed in."""
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    key, value = items[mid]
    node = RPAINode(key - parent_actual, value)
    node.left = _build_relative(items, lo, mid, key)
    node.right = _build_relative(items, mid + 1, hi, key)
    _update(node)
    return node


class RPAITree:
    """Relative Partial Aggregate Index (paper Section 3).

    A map from unique numeric keys (aggregate values) to numeric values
    (partial aggregates) supporting logarithmic ``get_sum`` and
    ``shift_keys`` on top of the usual ordered-map operations.

    Args:
        prune_zeros: when True, an :meth:`add` that brings an entry's
            value to exactly 0 removes the entry.  The query engines
            enable this so the index size tracks live aggregate groups.

    Example:
        >>> t = RPAITree()
        >>> for k, v in [(10, 3), (20, 3), (40, 2), (60, 8)]:
        ...     t.put(k, v)
        >>> t.get_sum(50)
        8
        >>> t.shift_keys(15, 100)   # shift keys > 15 up by 100
        >>> sorted(k for k, _ in t.items())
        [10, 120, 140, 160]
    """

    __slots__ = ("_root", "_size", "prune_zeros")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._root: RPAINode | None = None
        self._size = 0
        self.prune_zeros = prune_zeros

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "RPAITree":
        """Build a tree from ``(key, value)`` pairs sorted by key, in O(n).

        The midpoint-recursive construction yields a height-balanced
        tree (sibling heights differ by at most one, so it is a valid
        AVL tree) and every node's key is stored directly in its
        parent's frame — no shifting or rebalancing ever runs, versus
        the O(n log n) of n repeated :meth:`put` calls.  Zero values are
        skipped when ``prune_zeros`` is set, mirroring what the
        per-entry path would have pruned.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        tree = cls(prune_zeros=prune_zeros)
        items = [(k, v) for k, v in sorted_items if not (prune_zeros and v == 0)]
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise ValueError(
                    f"bulk_load requires strictly increasing keys, got "
                    f"{items[i - 1][0]!r} before {items[i][0]!r}"
                )
        tree._root = _build_relative(items, 0, len(items), 0)
        tree._size = len(items)
        if _SELF.enabled:
            tree.check_invariants()
        return tree

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        """Return the value stored at ``key``, or ``default``."""
        node = self._root
        remaining = key
        while node is not None:
            if remaining == node.key:
                return node.value
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return default

    def put(self, key: float, value: float) -> None:
        """Insert ``key`` with ``value``, overwriting any existing entry."""
        if _SINK.enabled:
            _SINK.inc("rpai.put")
        if self.prune_zeros and value == 0:
            if key in self:
                self.delete(key)
            return
        self._root = self._put(self._root, key, value, replace=True)
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        """Add ``delta`` to the value at ``key`` (inserting if absent)."""
        if _SINK.enabled:
            _SINK.inc("rpai.add")
        if self.prune_zeros:
            current = self.get(key, None)
            if current is None:
                if delta == 0:
                    return
            elif current + delta == 0:
                self.delete(key)
                return
        self._root = self._put(self._root, key, delta, replace=False)
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        """Remove ``key`` and return its value; raises KeyError if absent."""
        if _SINK.enabled:
            _SINK.inc("rpai.delete")
        self._root, value = self._delete(self._root, key)
        if _SELF.enabled:
            self.check_invariants()
        return value

    def pop(self, key: float, default: float | None = None) -> float | None:
        """Like :meth:`delete` but returns ``default`` instead of raising."""
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        """Sum of values over entries with key ``<= key`` (or ``< key``).

        This is the paper's ``getSum`` (Figure 3): descend the tree and
        absorb whole left subtrees (via their stored sums) whenever the
        current node qualifies.
        """
        if _SINK.enabled:
            _SINK.inc("rpai.get_sum")
        total: float = 0
        node = self._root
        remaining = key
        while node is not None:
            qualifies = node.key <= remaining if inclusive else node.key < remaining
            remaining -= node.key
            if qualifies:
                total += node.value
                if node.left is not None:
                    total += node.left.sum
                node = node.right
            else:
                node = node.left
        return total

    def total_sum(self) -> float:
        """Sum of all values, in O(1)."""
        return self._root.sum if self._root is not None else 0

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        """Sum of values over entries with key ``> key`` (or ``>= key``)."""
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """Shift every key ``> key`` (``>= key`` if ``inclusive``) by ``delta``.

        Positive offsets follow Algorithm 1 exactly and touch O(log n)
        nodes.  Negative offsets follow Algorithm 2: the same descent,
        plus a BST-violation check against the subtree min/max offsets
        at every step of the way back up; violating entries are
        extracted and re-inserted (merging equal keys by addition),
        which is the Section 3.2.4 behaviour the engines rely on for
        tuple deletions.
        """
        if delta == 0:
            return
        if _SINK.enabled:
            _SINK.inc("rpai.shift_keys.pos" if delta > 0 else "rpai.shift_keys.neg")
            _SINK.observe("rpai.shift_magnitude", abs(delta))
            if delta < 0:
                # Violators-per-negative-shift is the paper's ``v``
                # (Section 3.2.4, expected <= 1 in aggregate usage):
                # delta the global violators counter across this shift.
                before = _SINK.counters.get("rpai.violations", 0)
                self._root = self._shift(self._root, key, delta, inclusive)
                _SINK.observe(
                    "rpai.neg_shift_violations",
                    _SINK.counters.get("rpai.violations", 0) - before,
                )
                if _SELF.enabled:
                    self.check_invariants()
                return
        self._root = self._shift(self._root, key, delta, inclusive)
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        """Smallest actual key; raises KeyError when empty."""
        if self._root is None:
            raise KeyError("empty index")
        rel, _ = _min_entry(self._root)
        return rel

    def max_key(self) -> float:
        """Largest actual key; raises KeyError when empty."""
        if self._root is None:
            raise KeyError("empty index")
        rel, _ = _max_entry(self._root)
        return rel

    def successor(self, key: float) -> float | None:
        """Smallest key strictly greater than ``key`` (None if none)."""
        best: float | None = None
        node = self._root
        acc: float = 0
        while node is not None:
            actual = acc + node.key
            if actual > key:
                best = actual
                acc = actual
                node = node.left
            else:
                acc = actual
                node = node.right
        return best

    def predecessor(self, key: float) -> float | None:
        """Largest key strictly smaller than ``key`` (None if none)."""
        best: float | None = None
        node = self._root
        acc: float = 0
        while node is not None:
            actual = acc + node.key
            if actual < key:
                best = actual
                acc = actual
                node = node.right
            else:
                acc = actual
                node = node.left
        return best

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        """Smallest key ``k`` such that ``get_sum(k) > threshold``.

        Used by the multi-level-nesting engines (NQ1/NQ2) to locate the
        eligibility boundary of a cumulative-volume predicate in
        O(log n).  Assumes all values are non-negative (true for the
        volume/quantity indexes the engines build).
        """
        node = self._root
        if node is None or node.sum <= threshold:
            return None
        acc: float = 0
        remaining = threshold
        while node is not None:
            actual = acc + node.key
            left_sum = node.left.sum if node.left is not None else 0
            if node.left is not None and left_sum > remaining:
                node = node.left
                acc = actual
                continue
            if left_sum + node.value > remaining:
                return actual
            remaining -= left_sum + node.value
            node = node.right
            acc = actual
        return None  # pragma: no cover - guarded by the root.sum check

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        """Iterate ``(key, value)`` with key in the interval, ascending.

        O(log n + m) for m reported entries.
        """
        yield from self._range(self._root, 0, lo, hi, lo_inclusive, hi_inclusive)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        """All ``(actual_key, value)`` pairs in increasing key order."""
        yield from self._items(self._root, 0)

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._root = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: float) -> bool:
        node = self._root
        remaining = key
        while node is not None:
            if remaining == node.key:
                return True
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"RPAITree({{{entries}}})"

    def height(self) -> int:
        """Current tree height (for balance diagnostics and tests)."""
        return _height(self._root)

    # -- internals --------------------------------------------------------------

    def _put(
        self, node: RPAINode | None, key: float, value: float, *, replace: bool
    ) -> RPAINode:
        """Insert/merge ``(key, value)`` into the subtree; ``key`` is
        expressed in the subtree root's parent frame."""
        if node is None:
            self._size += 1
            return RPAINode(key, value)
        if key == node.key:
            node.value = value if replace else node.value + value
            _update(node)
            return node
        if key < node.key:
            node.left = self._put(node.left, key - node.key, value, replace=replace)
        else:
            node.right = self._put(node.right, key - node.key, value, replace=replace)
        return _rebalance(node)

    def _delete(self, node: RPAINode | None, key: float) -> tuple[RPAINode | None, float]:
        """Remove ``key`` (parent-frame) from the subtree; returns the
        new subtree root and the removed value."""
        if node is None:
            raise KeyError(key)
        if key < node.key:
            node.left, value = self._delete(node.left, key - node.key)
        elif key > node.key:
            node.right, value = self._delete(node.right, key - node.key)
        else:
            value = node.value
            if node.left is None:
                self._size -= 1
                replacement = node.right
                if replacement is not None:
                    replacement.key += node.key
                return replacement, value
            if node.right is None:
                self._size -= 1
                replacement = node.left
                replacement.key += node.key
                return replacement, value
            # Two children: replace with the in-order successor.  The
            # node's stored key moves by the successor's offset, so both
            # children are re-based to keep their actual keys fixed.
            successor_rel, successor_value = _min_entry(node.right)
            node.right, _ = self._delete(node.right, successor_rel)
            node.value = successor_value
            node.key += successor_rel
            if node.left is not None:
                node.left.key -= successor_rel
            if node.right is not None:
                node.right.key -= successor_rel
        return _rebalance(node), value

    def _shift(
        self, node: RPAINode | None, key: float, delta: float, inclusive: bool
    ) -> RPAINode | None:
        """Algorithm 1 / 2: shift qualifying keys in the subtree.

        ``key`` is in the subtree root's parent frame.  Structure (and
        therefore AVL balance) is unchanged except for violation fixes,
        which rebalance internally.
        """
        if node is None:
            return None
        qualifies = node.key >= key if inclusive else node.key > key
        if qualifies:
            # Node and its whole right subtree shift implicitly with
            # node.key; the left subtree is first shifted recursively
            # (only its qualifying part moves) and then compensated so
            # the +delta on node.key does not drag it along.
            node.left = self._shift(node.left, key - node.key, delta, inclusive)
            node.key += delta
            if node.left is not None:
                node.left.key -= delta
            _update(node)
            if delta >= 0:
                return node
            if node.left is not None and node.left.key + node.left.max_off >= 0:
                node = self._fix_from_left(node)
            return _balance_any(node)
        node.right = self._shift(node.right, key - node.key, delta, inclusive)
        _update(node)
        if delta >= 0:
            return node
        if node.right is not None and node.right.key + node.right.min_off <= 0:
            node = self._fix_from_right(node)
        return _balance_any(node)

    def _fix_from_left(self, node: RPAINode) -> "RPAINode | None":
        """Restore the BST property when the left subtree contains keys
        ``>=`` the node's key (paper's ``fixTreeFromLeft``).

        Rather than detaching the whole left subtree, only the violating
        entries are extracted (largest first) and re-inserted, so the
        cost is O(v log n) for v violators.  Re-insertion uses merge
        semantics: an entry landing exactly on an existing key adds its
        value, which realises the Section 3.2.4 duplicate-collapse.
        """
        violators: list[tuple[float, float]] = []
        while node.left is not None and node.left.key + node.left.max_off >= 0:
            rel, value = _max_entry(node.left)  # rel is in node's frame, >= 0
            node.left, _ = self._delete(node.left, rel)
            violators.append((rel + node.key, value))  # parent-frame key
        if _SINK.enabled:
            _SINK.inc("rpai.fix_tree")
            _SINK.inc("rpai.violations", len(violators))
        _update(node)
        result = _balance_any(node)
        for key, value in violators:
            result = self._reinsert(result, key, value)
        return result

    def _fix_from_right(self, node: RPAINode) -> "RPAINode | None":
        """Mirror image of :meth:`_fix_from_left` for right-side
        violations (keys ``<=`` the node's key in the right subtree)."""
        violators: list[tuple[float, float]] = []
        while node.right is not None and node.right.key + node.right.min_off <= 0:
            rel, value = _min_entry(node.right)  # rel is in node's frame, <= 0
            node.right, _ = self._delete(node.right, rel)
            violators.append((rel + node.key, value))  # parent-frame key
        if _SINK.enabled:
            _SINK.inc("rpai.fix_tree")
            _SINK.inc("rpai.violations", len(violators))
        _update(node)
        result = _balance_any(node)
        for key, value in violators:
            result = self._reinsert(result, key, value)
        return result

    def _reinsert(self, node: "RPAINode | None", key: float, value: float) -> RPAINode | None:
        """Merge an extracted violator back into the subtree rooted at
        ``node`` (``key`` in the parent frame).  Honors ``prune_zeros``:
        a merge that cancels an existing entry deletes it instead."""
        if self.prune_zeros:
            existing = self._subtree_get(node, key)
            if existing is not None and existing + value == 0:
                new_node, _ = self._delete(node, key)
                return new_node
            if existing is None and value == 0:
                return node
        return self._put(node, key, value, replace=False)

    @staticmethod
    def _subtree_get(node: RPAINode | None, key: float) -> float | None:
        remaining = key
        while node is not None:
            if remaining == node.key:
                return node.value
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return None

    def _items(self, node: RPAINode | None, acc: float) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        actual = acc + node.key
        yield from self._items(node.left, actual)
        yield (actual, node.value)
        yield from self._items(node.right, actual)

    def _range(
        self,
        node: RPAINode | None,
        acc: float,
        lo: float,
        hi: float,
        lo_inclusive: bool,
        hi_inclusive: bool,
    ) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        actual = acc + node.key
        above_lo = actual >= lo if lo_inclusive else actual > lo
        below_hi = actual <= hi if hi_inclusive else actual < hi
        if above_lo:
            yield from self._range(node.left, actual, lo, hi, lo_inclusive, hi_inclusive)
        if above_lo and below_hi:
            yield (actual, node.value)
        if below_hi:
            yield from self._range(node.right, actual, lo, hi, lo_inclusive, hi_inclusive)

    # -- validation (tests / self-check mode) -----------------------------------

    def validate(self) -> None:
        """Public invariant self-check (alias of :meth:`check_invariants`).

        With ``REPRO_SELFCHECK=1`` (see :mod:`repro.obs`) this runs
        automatically after every public mutating operation.
        """
        self.check_invariants()

    def check_invariants(self) -> None:
        """Walk the whole tree verifying every structural invariant.

        Raises AssertionError on: broken BST order over *actual* keys,
        stale heights, AVL imbalance, wrong subtree sums, or wrong
        min/max offsets.  O(n); used heavily by the property tests.
        """
        if _SINK.enabled:
            _SINK.inc("selfcheck.validations")
        size = self._validate(self._root, 0, None, None)
        assert size == self._size, f"size mismatch: counted {size}, stored {self._size}"

    def _validate(
        self,
        node: RPAINode | None,
        acc: float,
        lo: float | None,
        hi: float | None,
    ) -> int:
        if node is None:
            return 0
        actual = acc + node.key
        assert lo is None or actual > lo, f"BST violation: {actual} <= {lo}"
        assert hi is None or actual < hi, f"BST violation: {actual} >= {hi}"
        left_size = self._validate(node.left, actual, lo, actual)
        right_size = self._validate(node.right, actual, actual, hi)
        expected_height = 1 + max(_height(node.left), _height(node.right))
        assert node.height == expected_height, "stale height"
        balance = _height(node.left) - _height(node.right)
        assert -1 <= balance <= 1, f"AVL imbalance {balance} at key {actual}"
        expected_sum = node.value
        expected_min: float = 0
        expected_max: float = 0
        if node.left is not None:
            expected_sum += node.left.sum
            expected_min = node.left.key + node.left.min_off
        if node.right is not None:
            expected_sum += node.right.sum
            expected_max = node.right.key + node.right.max_off
        assert node.sum == expected_sum, f"sum mismatch at key {actual}"
        assert node.min_off == expected_min, f"min_off mismatch at key {actual}"
        assert node.max_off == expected_max, f"max_off mismatch at key {actual}"
        return left_size + right_size + 1
