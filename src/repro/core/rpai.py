"""RPAI trees: Relative Partial Aggregate Indexes (paper Section 3).

An RPAI tree is a balanced binary search tree keyed by aggregate values
in which every node stores its key **relative to its parent**: the
actual key of a node is the sum of the stored keys along the path from
the root.  This single representational twist is what makes
``shift_keys`` logarithmic — adding ``d`` to one node's stored key
implicitly shifts the keys of its entire subtree (Section 3.2.1).

Each node additionally maintains:

``sum``
    the sum of the values in its subtree, which makes the prefix-sum
    query ``get_sum(k)`` logarithmic (Section 3.1, Figure 3);
``min_off`` / ``max_off``
    the minimum / maximum actual key in its subtree expressed as an
    offset from the node's *own* actual key.  These correspond to the
    paper's ``minKey``/``maxKey`` attributes (Section 3.2.3) but are
    stored frame-free, so they never need adjusting when the node's own
    stored key changes; they are used to detect BST violations after a
    negative shift.

Balancing: the paper balances with Left-Leaning Red-Black trees and
notes the scheme is interchangeable ("the same principles would apply
to B-trees as well", Section 3.2.5).  This implementation balances with
AVL rotations — the rotations carry the relative keys, subtree sums and
min/max offsets through exactly as Section 3.2.5 requires, and AVL's
delete is easier to verify exhaustively.  Heights, and therefore every
complexity bound in the paper, are identical up to constants.

Hot-path engineering (see docs/rpai_internals.md): every public
mutation runs as an iterative loop over an explicit parent stack —
no per-level Python frames or tuple returns.  ``put``/``add`` on an
existing key take an in-place fast path (adjust the value and bump
subtree sums along the stack; structure, heights and offsets are
untouched); inserts stop full rebalancing at the first level whose
height stabilizes and finish with O(1)-per-level sum/offset patches;
``shift_keys`` walks its single root-to-frontier path iteratively and,
for positive offsets, patches only the affected-side offsets on the way
back up.  Spliced-out nodes are pooled in a bounded free list.  The
recursive subtree helpers (``_put``/``_delete``) survive only for the
rare Algorithm 2 violation repairs, which operate on detached subtrees.

Complexities (n = number of entries):

* ``get`` / ``put`` / ``add`` / ``delete`` — O(log n)
* ``get_sum`` / ``successor`` / ``first_key_with_prefix_above`` — O(log n)
* ``shift_keys`` with positive offset — O(log n)  (Algorithm 1)
* ``shift_keys`` with negative offset — O((1 + v) log n) where ``v`` is
  the number of BST-order violations repaired (Algorithm 2).  In the
  aggregate-maintenance special case of Section 3.2.4 (monotone keys,
  offset bounded by the deleted tuple's contribution) ``v <= 1``, so
  deletion-driven shifts stay logarithmic.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.obs import SELFCHECK as _SELF
from repro.obs import SINK as _SINK
from repro.trees._avl import height as _height
from repro.trees._avl import make_avl_ops

__all__ = ["RPAITree", "RPAINode"]


class RPAINode:
    """A single tree node.  All fields are package-internal.

    Attributes:
        key: key relative to the parent's actual key (the root's key is
            relative to zero, i.e. absolute).
        value: the stored partial aggregate.
        sum: sum of ``value`` over this subtree.
        min_off: (minimum actual key in subtree) - (this node's actual key).
        max_off: (maximum actual key in subtree) - (this node's actual key).
        height: AVL height (leaf = 1).
    """

    __slots__ = ("key", "value", "sum", "min_off", "max_off", "height", "left", "right")

    def __init__(self, key: float, value: float) -> None:
        self.key = key
        self.value = value
        self.sum = value
        self.min_off: float = 0
        self.max_off: float = 0
        self.height = 1
        self.left: RPAINode | None = None
        self.right: RPAINode | None = None


def _update(node: RPAINode) -> None:
    """Recompute the derived fields of ``node`` from its children.

    Children must already be up to date.  ``min_off``/``max_off`` are
    offsets from the node's own actual key, so they depend only on the
    children's stored (relative) keys and offsets.
    """
    left, right = node.left, node.right
    height = 1
    total = node.value
    if left is not None:
        if left.height >= height:
            height = left.height + 1
        total += left.sum
    if right is not None:
        if right.height >= height:
            height = right.height + 1
        total += right.sum
    node.height = height
    node.sum = total
    node.min_off = left.key + left.min_off if left is not None else 0
    node.max_off = right.key + right.max_off if right is not None else 0


_rotate_left, _rotate_right, _rebalance = make_avl_ops(
    _update, relative=True, rotation_counter="rpai.rotations"
)

# Bounded pool of spliced-out nodes, shared by every RPAITree in the
# process.  Order-book workloads delete and reinsert price levels
# constantly; recycling node objects avoids an allocator round-trip
# (and slot re-zeroing) per churned entry.
_POOL: list[RPAINode] = []
_POOL_MAX = 4096


def _new_node(key: float, value: float) -> RPAINode:
    if _POOL:
        if _SINK.enabled:
            _SINK.inc("rpai.freelist.hits")
        node = _POOL.pop()
        node.key = key
        node.value = value
        node.sum = value
        node.min_off = 0
        node.max_off = 0
        node.height = 1
        return node
    if _SINK.enabled:
        _SINK.inc("rpai.freelist.misses")
    return RPAINode(key, value)


def _free_node(node: RPAINode) -> None:
    if len(_POOL) < _POOL_MAX:
        node.left = None
        node.right = None
        _POOL.append(node)
        if _SINK.enabled:
            _SINK.observe("rpai.freelist.depth", len(_POOL))


def _balance_any(node: RPAINode | None) -> RPAINode | None:
    """Restore the AVL property at ``node`` when its children are valid
    AVL trees of *arbitrary* height difference.

    Negative ``shift_keys`` repairs (Algorithm 2's ``fixTree``) can
    change a subtree's height by more than one, so the single-step
    rebalance used by put/delete is not sufficient on the way
    back up.  This is the classical AVL concatenation repair: rotate the
    heavy side up and recursively re-balance the demoted child; the
    height gap shrinks at every level, so the cost is
    O(gap * log n).
    """
    if node is None:
        return None
    _update(node)
    while True:
        left_h = _height(node.left)
        right_h = _height(node.right)
        if left_h - right_h > 1:
            left = node.left
            assert left is not None
            if _height(left.right) > _height(left.left):
                node.left = _rotate_left(left)
            node = _rotate_right(node)
            node.right = _balance_any(node.right)
            _update(node)
        elif right_h - left_h > 1:
            right = node.right
            assert right is not None
            if _height(right.left) > _height(right.right):
                node.right = _rotate_right(right)
            node = _rotate_left(node)
            node.left = _balance_any(node.left)
            _update(node)
        else:
            return node


def _min_entry(node: RPAINode) -> tuple[float, float]:
    """(key, value) of the minimum entry of ``node``'s subtree; the key
    is expressed relative to ``node``'s parent frame."""
    rel = node.key
    while node.left is not None:
        node = node.left
        rel += node.key
    return rel, node.value


def _max_entry(node: RPAINode) -> tuple[float, float]:
    """(key, value) of the maximum entry, key relative to the parent frame."""
    rel = node.key
    while node.right is not None:
        node = node.right
        rel += node.key
    return rel, node.value


def _build_relative(
    items: list[tuple[float, float]], lo: int, hi: int, parent_actual: float
) -> RPAINode | None:
    """Midpoint-recursive build of a relative-key subtree over
    ``items[lo:hi]``; ``parent_actual`` is the actual key of the frame
    the subtree root's stored key must be expressed in."""
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    key, value = items[mid]
    node = RPAINode(key - parent_actual, value)
    node.left = _build_relative(items, lo, mid, key)
    node.right = _build_relative(items, mid + 1, hi, key)
    _update(node)
    return node


class RPAITree:
    """Relative Partial Aggregate Index (paper Section 3).

    A map from unique numeric keys (aggregate values) to numeric values
    (partial aggregates) supporting logarithmic ``get_sum`` and
    ``shift_keys`` on top of the usual ordered-map operations.

    Args:
        prune_zeros: when True, an :meth:`add` that brings an entry's
            value to exactly 0 removes the entry.  The query engines
            enable this so the index size tracks live aggregate groups.

    Example:
        >>> t = RPAITree()
        >>> for k, v in [(10, 3), (20, 3), (40, 2), (60, 8)]:
        ...     t.put(k, v)
        >>> t.get_sum(50)
        8
        >>> t.shift_keys(15, 100)   # shift keys > 15 up by 100
        >>> sorted(k for k, _ in t.items())
        [10, 120, 140, 160]
    """

    __slots__ = ("_root", "_size", "prune_zeros")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._root: RPAINode | None = None
        self._size = 0
        self.prune_zeros = prune_zeros

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "RPAITree":
        """Build a tree from ``(key, value)`` pairs sorted by key, in O(n).

        The midpoint-recursive construction yields a height-balanced
        tree (sibling heights differ by at most one, so it is a valid
        AVL tree) and every node's key is stored directly in its
        parent's frame — no shifting or rebalancing ever runs, versus
        the O(n log n) of n repeated :meth:`put` calls.  Zero values are
        skipped when ``prune_zeros`` is set, mirroring what the
        per-entry path would have pruned.

        Raises:
            ValueError: when keys are not strictly increasing.
        """
        tree = cls(prune_zeros=prune_zeros)
        items = [(k, v) for k, v in sorted_items if not (prune_zeros and v == 0)]
        for i in range(1, len(items)):
            if items[i - 1][0] >= items[i][0]:
                raise ValueError(
                    f"bulk_load requires strictly increasing keys, got "
                    f"{items[i - 1][0]!r} before {items[i][0]!r}"
                )
        tree._root = _build_relative(items, 0, len(items), 0)
        tree._size = len(items)
        if _SELF.enabled:
            tree.check_invariants()
        return tree

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        """Return the value stored at ``key``, or ``default``."""
        node = self._root
        remaining = key
        while node is not None:
            if remaining == node.key:
                return node.value
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return default

    def put(self, key: float, value: float) -> None:
        """Insert ``key`` with ``value``, overwriting any existing entry."""
        if _SINK.enabled:
            _SINK.inc("rpai.put")
        self._put_root(key, value, replace=True)
        if _SELF.enabled:
            self.check_invariants()

    def add(self, key: float, delta: float) -> None:
        """Add ``delta`` to the value at ``key`` (inserting if absent)."""
        if _SINK.enabled:
            _SINK.inc("rpai.add")
        self._put_root(key, delta, replace=False)
        if _SELF.enabled:
            self.check_invariants()

    def delete(self, key: float) -> float:
        """Remove ``key`` and return its value; raises KeyError if absent."""
        if _SINK.enabled:
            _SINK.inc("rpai.delete")
        node = self._root
        stack: list[RPAINode] = []
        dirs: list[bool] = []
        remaining = key
        while node is not None and remaining != node.key:
            stack.append(node)
            remaining -= node.key
            if remaining < 0:
                dirs.append(False)
                node = node.left
            else:
                dirs.append(True)
                node = node.right
        if node is None:
            raise KeyError(key)
        value = self._splice(stack, dirs, node)
        if _SELF.enabled:
            self.check_invariants()
        return value

    def pop(self, key: float, default: float | None = None) -> float | None:
        """Like :meth:`delete` but returns ``default`` instead of raising."""
        if key in self:
            return self.delete(key)
        return default

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        """Sum of values over entries with key ``<= key`` (or ``< key``).

        This is the paper's ``getSum`` (Figure 3): descend the tree and
        absorb whole left subtrees (via their stored sums) whenever the
        current node qualifies.
        """
        if _SINK.enabled:
            _SINK.inc("rpai.get_sum")
        total: float = 0
        node = self._root
        remaining = key
        while node is not None:
            qualifies = node.key <= remaining if inclusive else node.key < remaining
            remaining -= node.key
            if qualifies:
                total += node.value
                if node.left is not None:
                    total += node.left.sum
                node = node.right
            else:
                node = node.left
        return total

    def total_sum(self) -> float:
        """Sum of all values, in O(1)."""
        return self._root.sum if self._root is not None else 0

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        """Sum of values over entries with key ``> key`` (or ``>= key``)."""
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """Shift every key ``> key`` (``>= key`` if ``inclusive``) by ``delta``.

        Positive offsets follow Algorithm 1 exactly and touch O(log n)
        nodes.  Negative offsets follow Algorithm 2: the same descent,
        plus a BST-violation check against the subtree min/max offsets
        at every step of the way back up; violating entries are
        extracted and re-inserted (merging equal keys by addition),
        which is the Section 3.2.4 behaviour the engines rely on for
        tuple deletions.
        """
        if delta == 0:
            return
        if _SINK.enabled:
            _SINK.inc("rpai.shift_keys.pos" if delta > 0 else "rpai.shift_keys.neg")
            _SINK.observe("rpai.shift_magnitude", abs(delta))
            if delta < 0:
                # Violators-per-negative-shift is the paper's ``v``
                # (Section 3.2.4, expected <= 1 in aggregate usage):
                # delta the global violators counter across this shift.
                before = _SINK.counters.get("rpai.violations", 0)
                self._shift_root(key, delta, inclusive)
                _SINK.observe(
                    "rpai.neg_shift_violations",
                    _SINK.counters.get("rpai.violations", 0) - before,
                )
                if _SELF.enabled:
                    self.check_invariants()
                return
        self._shift_root(key, delta, inclusive)
        if _SELF.enabled:
            self.check_invariants()

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        """Smallest actual key; raises KeyError when empty."""
        if self._root is None:
            raise KeyError("empty index")
        rel, _ = _min_entry(self._root)
        return rel

    def max_key(self) -> float:
        """Largest actual key; raises KeyError when empty."""
        if self._root is None:
            raise KeyError("empty index")
        rel, _ = _max_entry(self._root)
        return rel

    def successor(self, key: float) -> float | None:
        """Smallest key strictly greater than ``key`` (None if none)."""
        best: float | None = None
        node = self._root
        acc: float = 0
        while node is not None:
            actual = acc + node.key
            if actual > key:
                best = actual
                acc = actual
                node = node.left
            else:
                acc = actual
                node = node.right
        return best

    def predecessor(self, key: float) -> float | None:
        """Largest key strictly smaller than ``key`` (None if none)."""
        best: float | None = None
        node = self._root
        acc: float = 0
        while node is not None:
            actual = acc + node.key
            if actual < key:
                best = actual
                acc = actual
                node = node.right
            else:
                acc = actual
                node = node.left
        return best

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        """Smallest key ``k`` such that ``get_sum(k) > threshold``.

        Used by the multi-level-nesting engines (NQ1/NQ2) to locate the
        eligibility boundary of a cumulative-volume predicate in
        O(log n).  Assumes all values are non-negative (true for the
        volume/quantity indexes the engines build).
        """
        node = self._root
        if node is None or node.sum <= threshold:
            return None
        acc: float = 0
        remaining = threshold
        while node is not None:
            actual = acc + node.key
            left_sum = node.left.sum if node.left is not None else 0
            if node.left is not None and left_sum > remaining:
                node = node.left
                acc = actual
                continue
            if left_sum + node.value > remaining:
                return actual
            remaining -= left_sum + node.value
            node = node.right
            acc = actual
        return None  # pragma: no cover - guarded by the root.sum check

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        """Iterate ``(key, value)`` with key in the interval, ascending.

        O(log n + m) for m reported entries.
        """
        yield from self._range(self._root, 0, lo, hi, lo_inclusive, hi_inclusive)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        """All ``(actual_key, value)`` pairs in increasing key order."""
        stack: list[tuple[RPAINode, float]] = []
        node = self._root
        acc: float = 0
        while stack or node is not None:
            while node is not None:
                acc = acc + node.key
                stack.append((node, acc))
                node = node.left
            node, actual = stack.pop()
            yield (actual, node.value)
            acc = actual
            node = node.right

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._root = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: float) -> bool:
        node = self._root
        remaining = key
        while node is not None:
            if remaining == node.key:
                return True
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"RPAITree({{{entries}}})"

    def height(self) -> int:
        """Current tree height (for balance diagnostics and tests)."""
        return _height(self._root)

    # -- internals --------------------------------------------------------------

    def _attach(
        self, stack: list[RPAINode], dirs: list[bool], i: int, node: RPAINode | None
    ) -> None:
        """Reattach the (possibly new) root of the subtree at stack
        level ``i`` to its parent (or as the tree root for i == 0).
        Stored keys are frame-relative, so a rotation at level ``i``
        never changes what the parent pointer must carry."""
        if i == 0:
            self._root = node
        else:
            parent = stack[i - 1]
            if dirs[i - 1]:
                parent.right = node
            else:
                parent.left = node

    def _put_root(self, key: float, value: float, *, replace: bool) -> None:
        """Iterative insert/merge of ``(key, value)``, prune-aware.

        Existing keys take the fast path: set/merge the value in place
        and bump the subtree sums along the parent stack.  The structure
        — and with it every height and min/max offset — is unchanged, so
        no rebalancing or offset work happens at all.  A value landing
        on exactly 0 under ``prune_zeros`` splices the node out via the
        already-built stack instead.

        New keys attach a leaf and unwind with full rebalancing only
        until the subtree height stabilizes (AVL insert performs at most
        one rotation, which restores the pre-insert height); the
        remaining ancestors need just a sum increment plus a refresh of
        the one offset facing the descent side.
        """
        node = self._root
        prune = self.prune_zeros
        if node is None:
            if prune and value == 0:
                return
            self._root = _new_node(key, value)
            self._size = 1
            return
        stack: list[RPAINode] = []
        dirs: list[bool] = []
        remaining = key
        while True:
            if remaining == node.key:
                new = value if replace else node.value + value
                if prune and new == 0:
                    self._splice(stack, dirs, node)
                    return
                delta = new - node.value
                node.value = new
                if delta:
                    node.sum += delta
                    for ancestor in stack:
                        ancestor.sum += delta
                return
            remaining -= node.key
            stack.append(node)
            if remaining < 0:
                dirs.append(False)
                child = node.left
            else:
                dirs.append(True)
                child = node.right
            if child is None:
                break
            node = child
        if prune and value == 0:
            return
        leaf = _new_node(remaining, value)
        self._size += 1
        if dirs[-1]:
            node.right = leaf
        else:
            node.left = leaf
        i = len(stack) - 1
        while i >= 0:
            current = stack[i]
            old_height = current.height
            balanced = _rebalance(current)
            if balanced is not current:
                self._attach(stack, dirs, i, balanced)
                i -= 1
                break
            if balanced.height == old_height:
                i -= 1
                break
            i -= 1
        # Light phase: heights are stable above, but subtree sums grow by
        # the inserted value and the offset facing the descent side must
        # track the (possibly rotated) child's new stored key.
        while i >= 0:
            current = stack[i]
            current.sum += value
            if dirs[i]:
                child = current.right
                current.max_off = child.key + child.max_off
            else:
                child = current.left
                current.min_off = child.key + child.min_off
            i -= 1

    def _splice(self, stack: list[RPAINode], dirs: list[bool], node: RPAINode) -> float:
        """Remove ``node`` (found at the bottom of ``stack``) and
        rebalance the path; returns the removed value.

        The two-children case walks on to the in-order successor,
        splices it out, and moves its entry into ``node`` — which shifts
        ``node``'s stored key by the successor's relative offset, so
        both children are re-based to keep their actual keys fixed
        before that level rebalances.
        """
        value = node.value
        if node.left is not None and node.right is not None:
            target_index = len(stack)
            stack.append(node)
            dirs.append(True)
            successor = node.right
            rel = successor.key  # successor's actual key, in node's frame
            while successor.left is not None:
                stack.append(successor)
                dirs.append(False)
                successor = successor.left
                rel += successor.key
            replacement = successor.right
            if replacement is not None:
                replacement.key += successor.key
            parent = stack[-1]
            if dirs[-1]:
                parent.right = replacement
            else:
                parent.left = replacement
            node.value = successor.value
            _free_node(successor)
            self._size -= 1
            for i in range(len(stack) - 1, -1, -1):
                current = stack[i]
                if i == target_index:
                    current.key += rel
                    if current.left is not None:
                        current.left.key -= rel
                    if current.right is not None:
                        current.right.key -= rel
                balanced = _rebalance(current)
                if balanced is not current:
                    self._attach(stack, dirs, i, balanced)
        else:
            replacement = node.right if node.left is None else node.left
            if replacement is not None:
                replacement.key += node.key
            if stack:
                parent = stack[-1]
                if dirs[-1]:
                    parent.right = replacement
                else:
                    parent.left = replacement
            else:
                self._root = replacement
            _free_node(node)
            self._size -= 1
            for i in range(len(stack) - 1, -1, -1):
                current = stack[i]
                balanced = _rebalance(current)
                if balanced is not current:
                    self._attach(stack, dirs, i, balanced)
        return value

    def _shift_root(self, key: float, delta: float, inclusive: bool) -> None:
        """Algorithm 1 / 2 as one iterative pass.

        The descent is single-path: a qualifying node shifts (itself and
        implicitly its whole right subtree) and recurses only into its
        left subtree; a non-qualifying node recurses only right.  For
        ``delta > 0`` (Algorithm 1) the structure, sums and heights are
        untouched, so the unwind just patches stored keys and the one
        offset facing the visited child.  For ``delta < 0`` (Algorithm
        2) the unwind re-derives each level's fields, checks the min/max
        offsets for BST violations, and runs the fixTree extraction +
        height repair where needed.
        """
        node = self._root
        if node is None:
            return
        stack: list[RPAINode] = []
        quals: list[bool] = []
        dirs: list[bool] = []
        remaining = key
        while node is not None:
            qualifies = node.key >= remaining if inclusive else node.key > remaining
            remaining -= node.key
            stack.append(node)
            quals.append(qualifies)
            dirs.append(not qualifies)
            node = node.left if qualifies else node.right
        if delta > 0:
            for i in range(len(stack) - 1, -1, -1):
                current = stack[i]
                if quals[i]:
                    current.key += delta
                    left = current.left
                    if left is not None:
                        left.key -= delta
                        current.min_off = left.key + left.min_off
                else:
                    right = current.right
                    if right is not None:
                        current.max_off = right.key + right.max_off
            return
        for i in range(len(stack) - 1, -1, -1):
            current = stack[i]
            if quals[i]:
                current.key += delta
                if current.left is not None:
                    current.left.key -= delta
                _update(current)
                if (
                    current.left is not None
                    and current.left.key + current.left.max_off >= 0
                ):
                    fixed = self._fix_from_left(current)
                else:
                    fixed = current
            else:
                _update(current)
                if (
                    current.right is not None
                    and current.right.key + current.right.min_off <= 0
                ):
                    fixed = self._fix_from_right(current)
                else:
                    fixed = current
            self._attach(stack, dirs, i, _balance_any(fixed))

    def _put(
        self, node: RPAINode | None, key: float, value: float, *, replace: bool
    ) -> RPAINode:
        """Recursive insert/merge into a *detached* subtree; ``key`` is
        expressed in the subtree root's parent frame.  Used only by the
        fixTree repair path — the public mutations are iterative."""
        if node is None:
            self._size += 1
            return _new_node(key, value)
        if key == node.key:
            node.value = value if replace else node.value + value
            _update(node)
            return node
        if key < node.key:
            node.left = self._put(node.left, key - node.key, value, replace=replace)
        else:
            node.right = self._put(node.right, key - node.key, value, replace=replace)
        return _rebalance(node)

    def _delete(self, node: RPAINode | None, key: float) -> tuple[RPAINode | None, float]:
        """Recursive removal from a *detached* subtree (parent-frame
        ``key``); returns the new subtree root and the removed value.
        Used only by the fixTree repair path."""
        if node is None:
            raise KeyError(key)
        if key < node.key:
            node.left, value = self._delete(node.left, key - node.key)
        elif key > node.key:
            node.right, value = self._delete(node.right, key - node.key)
        else:
            value = node.value
            if node.left is None:
                self._size -= 1
                replacement = node.right
                if replacement is not None:
                    replacement.key += node.key
                _free_node(node)
                return replacement, value
            if node.right is None:
                self._size -= 1
                replacement = node.left
                replacement.key += node.key
                _free_node(node)
                return replacement, value
            # Two children: replace with the in-order successor.  The
            # node's stored key moves by the successor's offset, so both
            # children are re-based to keep their actual keys fixed.
            successor_rel, successor_value = _min_entry(node.right)
            node.right, _ = self._delete(node.right, successor_rel)
            node.value = successor_value
            node.key += successor_rel
            if node.left is not None:
                node.left.key -= successor_rel
            if node.right is not None:
                node.right.key -= successor_rel
        return _rebalance(node), value

    def _fix_from_left(self, node: RPAINode) -> "RPAINode | None":
        """Restore the BST property when the left subtree contains keys
        ``>=`` the node's key (paper's ``fixTreeFromLeft``).

        Rather than detaching the whole left subtree, only the violating
        entries are extracted (largest first) and re-inserted, so the
        cost is O(v log n) for v violators.  Re-insertion uses merge
        semantics: an entry landing exactly on an existing key adds its
        value, which realises the Section 3.2.4 duplicate-collapse.
        """
        violators: list[tuple[float, float]] = []
        while node.left is not None and node.left.key + node.left.max_off >= 0:
            rel, value = _max_entry(node.left)  # rel is in node's frame, >= 0
            node.left, _ = self._delete(node.left, rel)
            violators.append((rel + node.key, value))  # parent-frame key
        if _SINK.enabled:
            _SINK.inc("rpai.fix_tree")
            _SINK.inc("rpai.violations", len(violators))
        _update(node)
        result = _balance_any(node)
        for key, value in violators:
            result = self._reinsert(result, key, value)
        return result

    def _fix_from_right(self, node: RPAINode) -> "RPAINode | None":
        """Mirror image of :meth:`_fix_from_left` for right-side
        violations (keys ``<=`` the node's key in the right subtree)."""
        violators: list[tuple[float, float]] = []
        while node.right is not None and node.right.key + node.right.min_off <= 0:
            rel, value = _min_entry(node.right)  # rel is in node's frame, <= 0
            node.right, _ = self._delete(node.right, rel)
            violators.append((rel + node.key, value))  # parent-frame key
        if _SINK.enabled:
            _SINK.inc("rpai.fix_tree")
            _SINK.inc("rpai.violations", len(violators))
        _update(node)
        result = _balance_any(node)
        for key, value in violators:
            result = self._reinsert(result, key, value)
        return result

    def _reinsert(self, node: "RPAINode | None", key: float, value: float) -> RPAINode | None:
        """Merge an extracted violator back into the subtree rooted at
        ``node`` (``key`` in the parent frame).  Honors ``prune_zeros``:
        a merge that cancels an existing entry deletes it instead."""
        if self.prune_zeros:
            existing = self._subtree_get(node, key)
            if existing is not None and existing + value == 0:
                new_node, _ = self._delete(node, key)
                return new_node
            if existing is None and value == 0:
                return node
        return self._put(node, key, value, replace=False)

    @staticmethod
    def _subtree_get(node: RPAINode | None, key: float) -> float | None:
        remaining = key
        while node is not None:
            if remaining == node.key:
                return node.value
            remaining -= node.key
            node = node.left if remaining < 0 else node.right
        return None

    def _range(
        self,
        node: RPAINode | None,
        acc: float,
        lo: float,
        hi: float,
        lo_inclusive: bool,
        hi_inclusive: bool,
    ) -> Iterator[tuple[float, float]]:
        if node is None:
            return
        actual = acc + node.key
        above_lo = actual >= lo if lo_inclusive else actual > lo
        below_hi = actual <= hi if hi_inclusive else actual < hi
        if above_lo:
            yield from self._range(node.left, actual, lo, hi, lo_inclusive, hi_inclusive)
        if above_lo and below_hi:
            yield (actual, node.value)
        if below_hi:
            yield from self._range(node.right, actual, lo, hi, lo_inclusive, hi_inclusive)

    # -- validation (tests / self-check mode) -----------------------------------

    def validate(self) -> None:
        """Public invariant self-check (alias of :meth:`check_invariants`).

        With ``REPRO_SELFCHECK=1`` (see :mod:`repro.obs`) this runs
        automatically after every public mutating operation.
        """
        self.check_invariants()

    def check_invariants(self) -> None:
        """Walk the whole tree verifying every structural invariant.

        Raises AssertionError on: broken BST order over *actual* keys,
        stale heights, AVL imbalance, wrong subtree sums, or wrong
        min/max offsets.  O(n); used heavily by the property tests.
        """
        if _SINK.enabled:
            _SINK.inc("selfcheck.validations")
        size = self._validate(self._root, 0, None, None)
        assert size == self._size, f"size mismatch: counted {size}, stored {self._size}"

    def _validate(
        self,
        node: RPAINode | None,
        acc: float,
        lo: float | None,
        hi: float | None,
    ) -> int:
        if node is None:
            return 0
        actual = acc + node.key
        assert lo is None or actual > lo, f"BST violation: {actual} <= {lo}"
        assert hi is None or actual < hi, f"BST violation: {actual} >= {hi}"
        left_size = self._validate(node.left, actual, lo, actual)
        right_size = self._validate(node.right, actual, actual, hi)
        expected_height = 1 + max(_height(node.left), _height(node.right))
        assert node.height == expected_height, "stale height"
        balance = _height(node.left) - _height(node.right)
        assert -1 <= balance <= 1, f"AVL imbalance {balance} at key {actual}"
        expected_sum = node.value
        expected_min: float = 0
        expected_max: float = 0
        if node.left is not None:
            expected_sum += node.left.sum
            expected_min = node.left.key + node.left.min_off
        if node.right is not None:
            expected_sum += node.right.sum
            expected_max = node.right.key + node.right.max_off
        assert node.sum == expected_sum, f"sum mismatch at key {actual}"
        assert node.min_off == expected_min, f"min_off mismatch at key {actual}"
        assert node.max_off == expected_max, f"max_off mismatch at key {actual}"
        return left_size + right_size + 1
