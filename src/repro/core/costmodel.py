"""Fitted per-backend per-op cost model for index backend selection.

The Cozy direction (PAPERS.md): instead of a hard-coded
backend-per-strategy rule, rank the candidate substrates {PAIMap,
Fenwick, RPAITree, RPAIBTree, SegmentTree} against a **cost model** and
pick the cheapest for the plan's predicted op mix.  The model is
deliberately simple and interpretable:

* Each ``(backend, op)`` pair has a declared **complexity shape** —
  ``const``, ``log`` or ``linear`` in the live-entry count ``n``.  The
  shapes are analytic facts about the structures (a dict point-get is
  O(1), a dict prefix-sum is O(n), a BIT prefix-sum is O(log U), …) and
  are not fitted.
* Calibration (``repro calibrate``) measures each op on each backend at
  several sizes with fixed, seeded op streams, then **fits the constant
  factors** ``cost(n) = c0 + c1 · basis(n)`` by least squares.  Only
  the constants are host-dependent; the shapes never change.

The fitted model is cached at ``benchmarks/results/costmodel.json``
(checked in, so CI and fresh clones rank with realistic CPython
constants without running calibration) and can be refit on any host
with ``repro calibrate``.  ``REPRO_COSTMODEL`` overrides the path.
A conservative built-in table is the final fallback.

Consumers:

* :func:`repro.query.planner.choose_backend` ranks candidates with the
  plan's static op mix at plan time;
* :class:`repro.core.adaptive.AdaptiveIndex` re-ranks at runtime from
  its live op-window counters (guarded by hysteresis — see the module
  docstring there);
* :func:`auto_batch_size` derives a batch size from the ratio of probe
  to update cost when ``--batch-size`` is not given.

All costs are in microseconds per operation.
"""

from __future__ import annotations

import json
import math
import os
import time
import tracemalloc
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "CostModel",
    "auto_batch_size",
    "calibrate",
    "default_model_path",
    "get_model",
    "set_model",
    "CANDIDATE_BACKENDS",
]

#: The five substrates of the candidate set, in presentation order.
CANDIDATE_BACKENDS = ("paimap", "fenwick", "segment", "rpai", "rpai_btree")

#: Ops the model prices.  ``get_sum`` is the range/prefix probe;
#: ``bulk_load`` is priced per *item*; ``memory`` is bytes per entry.
OPS = ("add", "get", "get_sum", "shift_keys", "bulk_load")

#: Declared complexity shapes — analytic, not fitted.  ``basis(n)`` is
#: 1, log2(n) or n respectively; the calibration fits c0/c1 only.
SHAPES: dict[str, dict[str, str]] = {
    "paimap": {
        "add": "const",
        "get": "const",
        "get_sum": "linear",
        "shift_keys": "linear",
        "bulk_load": "const",
    },
    "fenwick": {
        "add": "const",  # lazy: point array + pending queue
        "get": "const",
        "get_sum": "log",
        "shift_keys": "linear",
        "bulk_load": "const",
    },
    "segment": {
        "add": "log",
        "get": "const",
        "get_sum": "log",
        "shift_keys": "linear",
        "bulk_load": "const",
    },
    "rpai": {
        "add": "log",
        "get": "log",
        "get_sum": "log",
        "shift_keys": "log",
        "bulk_load": "const",
    },
    "rpai_btree": {
        "add": "log",
        "get": "log",
        "get_sum": "log",
        "shift_keys": "log",
        "bulk_load": "const",
    },
}

_BASES = {
    "const": lambda n: 1.0,
    "log": lambda n: math.log2(max(n, 2)),
    "linear": lambda n: float(max(n, 1)),
}

#: Conservative built-in constants (µs), in the same table shape the
#: calibration emits.  These are rounded from a calibration run on the
#: reference container; any host-fitted model supersedes them.  The
#: *relations* that drive every selection decision (dict point ops ≪
#: tree ops; dict prefix-sum is linear; AVL beats B-tree on CPython
#: constants; positional shifts are linear) are robust across hosts.
_BUILTIN: dict[str, Any] = {
    "version": 1,
    "source": "builtin",
    "unit": "us",
    "backends": {
        "paimap": {
            "add": {"shape": "const", "c0": 0.15, "c1": 0.0},
            "get": {"shape": "const", "c0": 0.06, "c1": 0.0},
            "get_sum": {"shape": "linear", "c0": 0.0, "c1": 0.027},
            "shift_keys": {"shape": "linear", "c0": 0.0, "c1": 0.21},
            "bulk_load": {"shape": "const", "c0": 0.08, "c1": 0.0},
            "memory": {"shape": "linear", "c0": 0.0, "c1": 36.0},
        },
        "fenwick": {
            "add": {"shape": "const", "c0": 0.20, "c1": 0.0},
            "get": {"shape": "const", "c0": 0.07, "c1": 0.0},
            "get_sum": {"shape": "log", "c0": 0.12, "c1": 0.10},
            "shift_keys": {"shape": "linear", "c0": 0.0, "c1": 0.54},
            "bulk_load": {"shape": "const", "c0": 0.59, "c1": 0.0},
            "memory": {"shape": "linear", "c0": 0.0, "c1": 64.0},
        },
        "segment": {
            "add": {"shape": "log", "c0": 0.16, "c1": 0.05},
            "get": {"shape": "const", "c0": 0.10, "c1": 0.0},
            "get_sum": {"shape": "log", "c0": 0.30, "c1": 0.11},
            "shift_keys": {"shape": "linear", "c0": 0.0, "c1": 1.19},
            "bulk_load": {"shape": "const", "c0": 0.29, "c1": 0.0},
            "memory": {"shape": "linear", "c0": 0.0, "c1": 86.0},
        },
        "rpai": {
            "add": {"shape": "log", "c0": 0.13, "c1": 0.09},
            "get": {"shape": "log", "c0": 0.0, "c1": 0.05},
            "get_sum": {"shape": "log", "c0": 0.07, "c1": 0.08},
            "shift_keys": {"shape": "log", "c0": 0.0, "c1": 0.50},
            "bulk_load": {"shape": "const", "c0": 0.67, "c1": 0.0},
            "memory": {"shape": "linear", "c0": 0.0, "c1": 122.0},
        },
        "rpai_btree": {
            "add": {"shape": "log", "c0": 0.0, "c1": 0.66},
            "get": {"shape": "log", "c0": 0.0, "c1": 0.07},
            "get_sum": {"shape": "log", "c0": 0.08, "c1": 0.17},
            "shift_keys": {"shape": "log", "c0": 0.0, "c1": 0.62},
            "bulk_load": {"shape": "const", "c0": 3.16, "c1": 0.0},
            "memory": {"shape": "linear", "c0": 0.0, "c1": 54.0},
        },
    },
}


def default_model_path() -> Path:
    """Where the fitted model is cached: the checked-in CI default."""
    override = os.environ.get("REPRO_COSTMODEL")
    if override:
        return Path(override)
    # src/repro/core/costmodel.py -> repo root is three parents up from
    # the package directory.
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "costmodel.json"


class CostModel:
    """Per-backend per-op cost curves ``cost(n) = c0 + c1 · basis(n)``."""

    def __init__(self, table: dict[str, Any]) -> None:
        self.table = table
        self.backends: dict[str, dict[str, dict[str, float]]] = table["backends"]
        self.source: str = table.get("source", "unknown")

    def op_cost(self, backend: str, op: str, n: int) -> float:
        """Predicted µs for one ``op`` on ``backend`` at ``n`` entries."""
        curve = self.backends[backend][op]
        return curve["c0"] + curve["c1"] * _BASES[curve["shape"]](n)

    def predict(self, backend: str, profile: dict[str, float]) -> float:
        """Predicted µs per *event* for a weighted op mix.

        ``profile`` maps op names to per-event weights plus ``"n"``, the
        expected live-entry count.  Unknown backends raise ``KeyError``;
        ops with zero weight are skipped.
        """
        n = int(profile.get("n", 1024))
        total = 0.0
        for op in OPS:
            weight = profile.get(op, 0.0)
            if weight:
                total += weight * self.op_cost(backend, op, n)
        return total

    def rank(
        self, profile: dict[str, float], candidates: Iterable[str]
    ) -> list[tuple[float, str]]:
        """Candidates cheapest-first as ``(predicted µs/event, name)``."""
        scored = sorted((self.predict(name, profile), name) for name in candidates)
        return scored


_MODEL: CostModel | None = None


def get_model() -> CostModel:
    """The process-wide model: env override → checked-in JSON → builtin."""
    global _MODEL
    if _MODEL is None:
        path = default_model_path()
        table = _BUILTIN
        if path.is_file():
            try:
                loaded = json.loads(path.read_text())
                if isinstance(loaded.get("backends"), dict):
                    table = loaded
            except (OSError, ValueError):
                pass  # unreadable cache: the builtin table still ranks
        _MODEL = CostModel(table)
    return _MODEL


def set_model(model: CostModel | None) -> None:
    """Replace (or with None, reset) the process-wide model — tests use
    this to force deterministic rankings."""
    global _MODEL
    _MODEL = model


# -- calibration ---------------------------------------------------------------


def _calibration_items(n: int) -> list[tuple[int, float]]:
    """Deterministic dense key/value pairs (no RNG: Knuth-hash values)."""
    return [(k, float(1 + (k * 2654435761) % 9)) for k in range(n)]


def _time_per_op(fn, ops: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` µs per op for ``fn()`` covering ``ops`` ops."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best * 1e6 / ops


def _measure_backend(name: str, sizes: Iterable[int]) -> dict[str, list[tuple[int, float]]]:
    """Measured (n, µs/op) samples per op for one backend."""
    from repro.core.adaptive import BACKEND_CLASSES, DENSE_BACKENDS

    cls = BACKEND_CLASSES[name]
    samples: dict[str, list[tuple[int, float]]] = {op: [] for op in OPS}
    samples["memory"] = []
    for n in sizes:
        items = _calibration_items(n)
        kwargs: dict[str, Any] = {"prune_zeros": True}
        if name in DENSE_BACKENDS:
            # Headroom so the +1 shifts below stay inside the universe.
            kwargs["capacity"] = 2 * n

        samples["bulk_load"].append(
            (n, _time_per_op(lambda: cls.bulk_load(items, **kwargs), n))
        )

        index = cls.bulk_load(items, **kwargs)
        reps = 512
        touch = [(i * 7919) % n for i in range(reps)]

        def run_add() -> None:
            add = index.add
            for k in touch:
                add(k, 1.0)

        samples["add"].append((n, _time_per_op(run_add, reps)))

        def run_get() -> None:
            get = index.get
            for k in touch:
                get(k)

        samples["get"].append((n, _time_per_op(run_get, reps)))

        # Probes are measured interleaved with adds — that is how the
        # engines drive them, and it keeps the Fenwick backend's lazy
        # flush honest (a pure probe loop would flush once and then
        # measure the drained fast path only).
        def run_pair() -> None:
            add, get_sum = index.add, index.get_sum
            for k in touch:
                add(k, 1.0)
                get_sum(k)

        pair = _time_per_op(run_pair, reps)
        add_cost = samples["add"][-1][1]
        samples["get_sum"].append((n, max(pair - add_cost, 0.01)))

        shifts = 16
        pivots = [(i * 104729) % n for i in range(shifts)]

        def run_shift() -> None:
            shift = index.shift_keys
            for p in pivots:
                shift(p, 1)
                shift(p, -1)

        samples["shift_keys"].append((n, _time_per_op(run_shift, 2 * shifts)))

        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        built = cls.bulk_load(items, **kwargs)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del built
        samples["memory"].append((n, max(after - before, 0) / n))
    return samples


def _fit(shape: str, samples: list[tuple[int, float]]) -> dict[str, float]:
    """Least-squares fit of ``cost = c0 + c1 · basis(n)``; c1 clamped
    non-negative (a negative slope on a declared-monotone shape is
    measurement noise)."""
    basis = _BASES[shape]
    xs = [basis(n) for n, _ in samples]
    ys = [t for _, t in samples]
    count = len(samples)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        c1 = 0.0
    else:
        c1 = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var
        c1 = max(c1, 0.0)
    c0 = max(mean_y - c1 * mean_x, 0.0)
    return {"shape": shape, "c0": round(c0, 4), "c1": round(c1, 5)}


def calibrate(
    *,
    sizes: Iterable[int] = (256, 1024, 4096, 16384),
    out: Path | str | None = None,
) -> CostModel:
    """Run the deterministic calibration micro-benchmark and fit the
    model.  Writes the JSON cache (``out`` or the default path) and
    installs the result as the process-wide model."""
    sizes = list(sizes)
    backends: dict[str, Any] = {}
    for name in CANDIDATE_BACKENDS:
        measured = _measure_backend(name, sizes)
        fitted: dict[str, Any] = {}
        for op in OPS:
            fitted[op] = _fit(SHAPES[name][op], measured[op])
        # The memory samples are already normalized to bytes/entry, so
        # the curve is a flat per-entry slope rather than a fit.
        mem = sum(t for _, t in measured["memory"]) / len(measured["memory"])
        fitted["memory"] = {"shape": "linear", "c0": 0.0, "c1": round(mem, 2)}
        backends[name] = fitted
    table = {
        "version": 1,
        "source": "calibrated",
        "unit": "us",
        "sizes": sizes,
        "backends": backends,
    }
    path = Path(out) if out is not None else default_model_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(table, indent=2, sort_keys=True) + "\n")
    model = CostModel(table)
    set_model(model)
    return model


# -- batch-size auto-tuning ----------------------------------------------------


def auto_batch_size(
    profile: dict[str, float],
    backend: str,
    *,
    sharded: bool = False,
    model: CostModel | None = None,
) -> int:
    """Model-derived batch size for when ``--batch-size`` is not given.

    Batching amortizes the per-invocation overhead (the result probe,
    trigger dispatch, and for sharded runs the IPC round-trip) over B
    events while per-event index work stays constant.  Pick the
    smallest power of two where the amortized overhead drops below
    1/16 of the per-event work, clamped to [1, 512]; sharded runs floor
    at 256 — the measured break-even for the shared-memory frame
    transport (BENCH_sharding.json).
    """
    model = model or get_model()
    n = int(profile.get("n", 1024))
    update = sum(
        profile.get(op, 0.0) * model.op_cost(backend, op, n)
        for op in ("add", "shift_keys")
    )
    probe = sum(
        profile.get(op, 0.0) * model.op_cost(backend, op, n)
        for op in ("get", "get_sum")
    )
    # ~1µs of fixed per-invocation dispatch overhead beyond the probe.
    overhead = probe + 1.0
    if update <= 0:
        batch = 512
    else:
        batch = 1
        while batch < 512 and overhead / batch > update / 16:
            batch *= 2
    if sharded:
        batch = max(batch, 256)
    return batch
