"""Adaptive aggregate-index backend with N-way guarded migration.

The engines pick an index *statically* from the query plan (see
:func:`repro.query.planner.choose_backend`), but within a role there is
still a data-dependent choice: whether the keys that actually arrive
are small non-negative integers (a flat positional array beats a
pointer tree on every constant factor) and what the live op mix looks
like (probe-heavy vs update-heavy vs shift-heavy).  Those are runtime
properties of the data, not the query — so :class:`AdaptiveIndex`
wraps one live backend out of the candidate set in
:data:`BACKEND_CLASSES` and **migrates** between them:

* **Forced migrations** (correctness): while on a dense positional
  backend (Fenwick or segment tree), a mutation with a non-integer,
  negative, or too-large (>= ``2**17``) key, or any ``shift_keys``
  call, migrates to the configured sparse backend immediately — the
  same one-way guard the original Fenwick-first design had.
* **Periodic re-decisions** (performance): every
  ``DECISION_INTERVAL`` mutations the live op-window counters (adds,
  point gets, prefix probes, shifts) are turned into a profile and all
  currently-eligible backends are re-ranked against the fitted cost
  model (:mod:`repro.core.costmodel`).  A migration only happens under
  **hysteresis**: the challenger's predicted cost must beat the
  incumbent's by the cost-gap factor ``HYSTERESIS`` *and* a full
  decision interval must have elapsed since the last switch — two
  rules that together bound migrations to O(total ops /
  DECISION_INTERVAL) and stop ping-ponging on noisy mixes (the
  no-flap hypothesis test drives adversarial phase shifts against
  this).  Dense backends only re-enter the candidate set while every
  key ever mutated has been dense and no shift has occurred
  (``_dense_ok``).

Migration is a single O(n) ``bulk_load`` of the live entries (every
backend iterates them in key order already).  Reads never migrate: a
non-integral ``get`` probe cannot match a stored dense key (→ default)
and a non-integral ``get_sum`` bound floors (keys ``<= 3.7`` are
exactly keys ``<= 3``) — this matters because equality-θ engines probe
with fixed-side values like ``0.5 * SUM(...)`` that are routinely
fractional.

Everything is observable through :mod:`repro.obs` counters:
``backend.<name>_selected`` at construction,
``backend.migrations`` plus a per-reason ``backend.migration.<reason>``
on every switch, ``backend.decision.checks`` / ``.hold`` / ``.migrate``
for the periodic re-decisions, and ``backend.<name>_grows`` when a
dense universe doubles.

Dense backends are only selected for ``prune_zeros`` roles: a
positional array cannot distinguish an explicit zero entry from an
absent key, and under prune-zeros semantics it never has to.  All
engine aggregate indexes run pruned, so in practice only ad-hoc
unpruned uses skip straight to the sparse backend.

Interaction with compiled triggers (:mod:`repro.query.codegen`): dense
flavors inline ``_backend.add`` and bypass this wrapper on the fast
path, so the op window under-counts while a dense backend is compiled —
harmless, because the dense backend is already the model's pick for
dense traffic and the forced-migration guard (which deopts the
compiled trigger) still runs on every slow-path call.  Sparse flavors
emit plain ``wrapper.add(...)`` calls, so sparse↔sparse re-decisions
are invisible to compiled code by construction.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.core.pai_map import PAIMap
from repro.core.rpai import RPAITree
from repro.obs import SINK as _SINK
from repro.trees.fenwick import FenwickTree
from repro.trees.rpai_btree import RPAIBTree
from repro.trees.segment_tree import SegmentTree

__all__ = [
    "AdaptiveIndex",
    "BACKEND_CLASSES",
    "DENSE_BACKENDS",
    "SPARSE_BACKENDS",
    "MAX_DENSE_KEY",
]

#: Candidate substrate classes by model name.
BACKEND_CLASSES: dict[str, type] = {
    "paimap": PAIMap,
    "fenwick": FenwickTree,
    "segment": SegmentTree,
    "rpai": RPAITree,
    "rpai_btree": RPAIBTree,
}

#: Positional backends over a dense integer universe: need the dense-key
#: guard and cannot survive arbitrary keys or out-of-universe shifts.
DENSE_BACKENDS = frozenset({"fenwick", "segment"})

#: Backends that accept any ordered key and support shift_keys natively.
SPARSE_BACKENDS = frozenset({"paimap", "rpai", "rpai_btree"})

#: Initial dense universe; grows by doubling up to the cap below.
_INITIAL_CAPACITY = 1024
#: Keys at or beyond this trigger migration instead of further growth —
#: a 2**17-slot float list (~1 MiB) is the point where the flat array
#: stops being obviously cheaper than a tree over the live keys.
_MAX_UNIVERSE = 1 << 17

#: Public alias of the dense-universe bound: the trigger code generator
#: (:mod:`repro.query.codegen`) embeds this literal in its inlined
#: dense fast path, which must accept exactly the keys ``_as_dense``
#: accepts for plain ints.
MAX_DENSE_KEY = _MAX_UNIVERSE

#: Mutations between re-decisions (and the minimum spacing between
#: model-driven migrations — one interval's worth of ops).
DECISION_INTERVAL = 4096
#: Cost-gap threshold: a challenger must be predicted at least this
#: much cheaper (fraction of the incumbent's cost) to trigger a switch.
HYSTERESIS = 0.75
#: Below this many live entries a re-decision is not worth an O(n)
#: migration either way.
_MIN_DECISION_SIZE = 64


def _as_dense(key: Any) -> int | None:
    """``key`` as a dense-universe int, or None if it cannot be one."""
    if isinstance(key, int):
        ikey = key
    elif isinstance(key, float) and key.is_integer():
        ikey = int(key)
    else:
        return None
    if 0 <= ikey < _MAX_UNIVERSE:
        return ikey
    return None


def _build_backend(
    name: str, items: list[tuple[float, float]], *, prune_zeros: bool
) -> Any:
    """Bulk-load ``items`` (key-sorted) into a fresh ``name`` backend."""
    cls = BACKEND_CLASSES[name]
    if name in DENSE_BACKENDS:
        capacity = _INITIAL_CAPACITY
        if items:
            top = int(items[-1][0])
            while capacity <= top:
                capacity *= 2
        return cls.bulk_load(
            ((int(k), v) for k, v in items),
            prune_zeros=prune_zeros,
            capacity=capacity,
        )
    return cls.bulk_load(items, prune_zeros=prune_zeros)


class AdaptiveIndex:
    """Self-tuning aggregate index over the five-backend candidate set.

    Implements the full :class:`~repro.core.interfaces.AggregateIndex`
    protocol plus the order/search helpers, so it is a drop-in
    ``index_cls`` for the engines.  Which backend is live is an
    implementation detail; results are identical on every backend (the
    differential and conformance tests drive all of them).

    Args:
        prune_zeros: remove entries whose value becomes exactly 0.
        dense: starting backend for prune-zeros roles (``"fenwick"`` or
            ``"segment"``).
        sparse: fallback/start backend for arbitrary keys (``"rpai"``,
            ``"rpai_btree"`` or ``"paimap"``).
    """

    __slots__ = (
        "_backend",
        "_dense",
        "prune_zeros",
        "_name",
        "_dense_name",
        "_sparse_name",
        "_dense_ok",
        "_migrations",
        "_ops_since_decision",
        "_win_add",
        "_win_get",
        "_win_probe",
        "_win_shift",
    )

    def __init__(
        self,
        *,
        prune_zeros: bool = False,
        dense: str = "fenwick",
        sparse: str = "rpai",
    ) -> None:
        if dense not in DENSE_BACKENDS:
            raise ValueError(f"unknown dense backend {dense!r}")
        if sparse not in SPARSE_BACKENDS:
            raise ValueError(f"unknown sparse backend {sparse!r}")
        self.prune_zeros = prune_zeros
        self._dense_name = dense
        self._sparse_name = sparse
        self._init_counters()
        if prune_zeros:
            cls = BACKEND_CLASSES[dense]
            self._backend: Any = cls(_INITIAL_CAPACITY, prune_zeros=True)
            self._dense = True
            self._name = dense
        else:
            self._backend = BACKEND_CLASSES[sparse](prune_zeros=False)
            self._dense = False
            self._name = sparse
        if _SINK.enabled:
            _SINK.inc(f"backend.{self._name}_selected")

    def _init_counters(self) -> None:
        self._dense_ok = True
        self._migrations = 0
        self._ops_since_decision = 0
        self._win_add = 0
        self._win_get = 0
        self._win_probe = 0
        self._win_shift = 0

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
        dense: str = "fenwick",
        sparse: str = "rpai",
    ) -> "AdaptiveIndex":
        """Build from key-sorted pairs in O(n), inspecting the keys to
        pick the backend up front (all dense → the dense backend, else
        the sparse one)."""
        index = cls.__new__(cls)
        index.prune_zeros = prune_zeros
        index._dense_name = dense
        index._sparse_name = sparse
        index._init_counters()
        items = list(sorted_items)
        if prune_zeros and all(_as_dense(k) is not None for k, _ in items):
            index._backend = _build_backend(dense, items, prune_zeros=True)
            index._dense = True
            index._name = dense
        else:
            index._backend = _build_backend(sparse, items, prune_zeros=prune_zeros)
            index._dense = False
            index._name = sparse
            index._dense_ok = False
        if _SINK.enabled:
            _SINK.inc(f"backend.{index._name}_selected")
        return index

    @property
    def backend_name(self) -> str:
        """The live backend's model name — for tests and diagnostics."""
        return self._name

    @property
    def migrations(self) -> int:
        """Lifetime migration count for this instance (forced + model)."""
        return self._migrations

    # -- migration machinery ---------------------------------------------------

    def _switch(self, name: str, reason: str) -> None:
        """Migrate to backend ``name``: O(n) bulk load of the live
        entries (every backend iterates them in key order already)."""
        items = list(self._backend.items())
        if name in DENSE_BACKENDS and any(_as_dense(k) is None for k, _ in items):
            # A shift or float arithmetic produced non-dense keys since
            # the window started; dense promotion would corrupt them.
            self._dense_ok = False
            return
        self._backend = _build_backend(items=items, name=name, prune_zeros=self.prune_zeros)
        self._dense = name in DENSE_BACKENDS
        self._name = name
        self._migrations += 1
        if _SINK.enabled:
            _SINK.inc("backend.migrations")
            _SINK.inc(f"backend.migration.{reason}")

    def _migrate(self, reason: str) -> None:
        """Forced dense → sparse migration (correctness guard)."""
        self._dense_ok = False
        self._switch(self._sparse_name, reason)

    def _tick_mutation(self) -> None:
        self._win_add += 1
        self._ops_since_decision += 1
        if self._ops_since_decision >= DECISION_INTERVAL:
            self._redecide()

    def _redecide(self) -> None:
        """Periodic model-driven re-decision over the eligible backends.

        Hysteresis: called at most once per DECISION_INTERVAL mutations,
        and the winner must beat the incumbent's predicted cost by the
        HYSTERESIS cost-gap to displace it.
        """
        self._ops_since_decision = 0
        add_w = self._win_add
        get_w = self._win_get
        probe_w = self._win_probe
        shift_w = self._win_shift
        self._win_add = self._win_get = self._win_probe = self._win_shift = 0
        n = len(self._backend)
        if n < _MIN_DECISION_SIZE:
            return
        total = add_w + get_w + probe_w + shift_w
        if not total:
            return
        from repro.core import costmodel

        model = costmodel.get_model()
        profile = {
            "n": n,
            "add": add_w / total,
            "get": get_w / total,
            "get_sum": probe_w / total,
            "shift_keys": shift_w / total,
        }
        candidates = set(SPARSE_BACKENDS)
        if self.prune_zeros and self._dense_ok and not shift_w:
            candidates |= DENSE_BACKENDS
        candidates.add(self._name)
        ranking = model.rank(profile, candidates)
        if _SINK.enabled:
            _SINK.inc("backend.decision.checks")
        best_cost, best = ranking[0]
        current_cost = model.predict(self._name, profile)
        if best != self._name and best_cost < HYSTERESIS * current_cost:
            self._switch(best, "redecision")
            if _SINK.enabled:
                _SINK.inc("backend.decision.migrate")
        elif _SINK.enabled:
            _SINK.inc("backend.decision.hold")

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        self._win_get += 1
        if self._dense:
            dense = _as_dense(key)
            if dense is None:
                return default  # cannot match a stored dense key
            return self._backend.get(dense, default)
        return self._backend.get(key, default)

    def put(self, key: float, value: float) -> None:
        self._tick_mutation()
        if self._dense:
            dense = _as_dense(key)
            if dense is not None:
                backend = self._backend
                if dense >= backend.capacity:
                    self._ensure_capacity(dense)
                backend.put(dense, value)
                return
            self._migrate("non_dense_key")
        self._backend.put(key, value)

    def add(self, key: float, delta: float) -> None:
        self._tick_mutation()
        if self._dense:
            dense = _as_dense(key)
            if dense is not None:
                backend = self._backend
                if dense >= backend.capacity:
                    self._ensure_capacity(dense)
                backend.add(dense, delta)
                return
            self._migrate("non_dense_key")
        self._backend.add(key, delta)

    def delete(self, key: float) -> float:
        self._tick_mutation()
        if self._dense:
            dense = _as_dense(key)
            if dense is None:
                raise KeyError(key)
            return self._backend.delete(dense)
        return self._backend.delete(key)

    def pop(self, key: float, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    def _ensure_capacity(self, dense: int) -> None:
        """Grow the dense universe to cover ``dense`` (callers check the
        capacity inline first — this is off the hot path)."""
        self._backend.grow(dense + 1)
        if _SINK.enabled:
            _SINK.inc(f"backend.{self._name}_grows")

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        self._win_probe += 1
        if self._dense:
            floor = math.floor(key)
            if floor != key:
                # Non-integral bound: both < and <= reduce to <= floor.
                return self._backend.get_sum(floor, inclusive=True)
            return self._backend.get_sum(int(key), inclusive=inclusive)
        return self._backend.get_sum(key, inclusive=inclusive)

    def total_sum(self) -> float:
        return self._backend.total_sum()

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        self._win_shift += 1
        self._dense_ok = False
        if self._dense:
            self._migrate("shift_keys")
        self._backend.shift_keys(key, delta, inclusive=inclusive)

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        return self._backend.min_key()

    def max_key(self) -> float:
        return self._backend.max_key()

    def successor(self, key: float) -> float | None:
        return self._backend.successor(key)

    def predecessor(self, key: float) -> float | None:
        return self._backend.predecessor(key)

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        return self._backend.first_key_with_prefix_above(threshold)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        return self._backend.items()

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._backend.clear()

    def __len__(self) -> int:
        return len(self._backend)

    def __bool__(self) -> bool:
        return len(self._backend) > 0

    def __contains__(self, key: float) -> bool:
        if self._dense:
            dense = _as_dense(key)
            return dense is not None and dense in self._backend
        return key in self._backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"AdaptiveIndex[{self.backend_name}]({{{entries}}})"
