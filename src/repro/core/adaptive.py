"""Adaptive aggregate-index backend selection.

The engines pick an index *statically* from the query plan (PAI map for
equality-θ, RPAI tree for inequality-θ), but within a role there is
still a data-dependent choice: when every key that actually arrives is
a small non-negative integer and the role never shifts keys, a flat
Fenwick array (:class:`~repro.trees.fenwick.FenwickTree`) beats a
pointer tree on every constant factor.  Whether that holds is a runtime
property of the data, not the query — so :class:`AdaptiveIndex` starts
on the Fenwick backend and **migrates** to an
:class:`~repro.core.rpai.RPAITree` the first time the optimistic
assumption breaks:

* a mutation arrives with a non-integer, negative, or
  too-large (>= ``2**17``) key;
* anything calls ``shift_keys`` (the one operation a BIT cannot do).

Migration is a single O(n) ``bulk_load`` of the live entries (Fenwick
iterates them in key order already) and happens at most once per index.
Reads with non-dense keys never migrate: a non-integral ``get`` probe
cannot match a stored key (→ default) and a non-integral ``get_sum``
bound floors (keys ``<= 3.7`` are exactly keys ``<= 3``) — this matters
because equality-θ engines probe with fixed-side values like
``0.5 * SUM(...)`` that are routinely fractional.

Everything is observable through :mod:`repro.obs` counters:
``backend.fenwick_selected`` / ``backend.rpai_selected`` at
construction, ``backend.migrations`` plus a per-reason
``backend.migration.<reason>`` when the fallback fires, and
``backend.fenwick_grows`` when the dense universe doubles.

The Fenwick backend is only selected for ``prune_zeros`` roles: a BIT
cannot distinguish an explicit zero entry from an absent key, and under
prune-zeros semantics it never has to.  All engine aggregate indexes
run pruned, so in practice only ad-hoc unpruned uses skip straight to
the RPAI backend.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.core.rpai import RPAITree
from repro.obs import SINK as _SINK
from repro.trees.fenwick import FenwickTree

__all__ = ["AdaptiveIndex", "MAX_DENSE_KEY"]

#: Initial dense universe; grows by doubling up to the cap below.
_INITIAL_CAPACITY = 1024
#: Keys at or beyond this trigger migration instead of further growth —
#: a 2**17-slot float list (~1 MiB) is the point where the flat array
#: stops being obviously cheaper than a tree over the live keys.
_MAX_UNIVERSE = 1 << 17

#: Public alias of the dense-universe bound: the trigger code generator
#: (:mod:`repro.query.codegen`) embeds this literal in its inlined
#: Fenwick fast path, which must accept exactly the keys ``_as_dense``
#: accepts for plain ints.
MAX_DENSE_KEY = _MAX_UNIVERSE


def _as_dense(key: Any) -> int | None:
    """``key`` as a dense-universe int, or None if it cannot be one."""
    if isinstance(key, int):
        ikey = key
    elif isinstance(key, float) and key.is_integer():
        ikey = int(key)
    else:
        return None
    if 0 <= ikey < _MAX_UNIVERSE:
        return ikey
    return None


class AdaptiveIndex:
    """Fenwick-first aggregate index with a one-way RPAI-tree fallback.

    Implements the full :class:`~repro.core.interfaces.AggregateIndex`
    protocol plus the order/search helpers, so it is a drop-in
    ``index_cls`` for the engines.  Which backend is live is an
    implementation detail; results are identical either way (the
    differential tests drive both paths).
    """

    __slots__ = ("_backend", "_dense", "prune_zeros")

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self.prune_zeros = prune_zeros
        if prune_zeros:
            self._backend: Any = FenwickTree(_INITIAL_CAPACITY, prune_zeros=True)
            self._dense = True
            if _SINK.enabled:
                _SINK.inc("backend.fenwick_selected")
        else:
            self._backend = RPAITree(prune_zeros=False)
            self._dense = False
            if _SINK.enabled:
                _SINK.inc("backend.rpai_selected")

    @classmethod
    def bulk_load(
        cls,
        sorted_items: Iterable[tuple[float, float]],
        *,
        prune_zeros: bool = False,
    ) -> "AdaptiveIndex":
        """Build from key-sorted pairs in O(n), inspecting the keys to
        pick the backend up front (all dense → Fenwick, else RPAI)."""
        index = cls.__new__(cls)
        index.prune_zeros = prune_zeros
        items = list(sorted_items)
        if prune_zeros and all(_as_dense(k) is not None for k, _ in items):
            capacity = _INITIAL_CAPACITY
            if items:
                top = int(items[-1][0])
                while capacity <= top:
                    capacity *= 2
            index._backend = FenwickTree.bulk_load(
                ((int(k), v) for k, v in items),
                prune_zeros=True,
                capacity=capacity,
            )
            index._dense = True
            if _SINK.enabled:
                _SINK.inc("backend.fenwick_selected")
        else:
            index._backend = RPAITree.bulk_load(items, prune_zeros=prune_zeros)
            index._dense = False
            if _SINK.enabled:
                _SINK.inc("backend.rpai_selected")
        return index

    @property
    def backend_name(self) -> str:
        """``"fenwick"`` or ``"rpai"`` — for tests and diagnostics."""
        return "fenwick" if self._dense else "rpai"

    def _migrate(self, reason: str) -> None:
        """One-way Fenwick → RPAI migration: O(n) bulk load of the live
        entries (already iterated in key order)."""
        self._backend = RPAITree.bulk_load(
            self._backend.items(), prune_zeros=self.prune_zeros
        )
        self._dense = False
        if _SINK.enabled:
            _SINK.inc("backend.migrations")
            _SINK.inc(f"backend.migration.{reason}")

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        if self._dense:
            dense = _as_dense(key)
            if dense is None:
                return default  # cannot match a stored dense key
            return self._backend.get(dense, default)
        return self._backend.get(key, default)

    def put(self, key: float, value: float) -> None:
        if self._dense:
            dense = _as_dense(key)
            if dense is not None:
                backend = self._backend
                if dense >= backend.capacity:
                    self._ensure_capacity(dense)
                backend.put(dense, value)
                return
            self._migrate("non_dense_key")
        self._backend.put(key, value)

    def add(self, key: float, delta: float) -> None:
        if self._dense:
            dense = _as_dense(key)
            if dense is not None:
                backend = self._backend
                if dense >= backend.capacity:
                    self._ensure_capacity(dense)
                backend.add(dense, delta)
                return
            self._migrate("non_dense_key")
        self._backend.add(key, delta)

    def delete(self, key: float) -> float:
        if self._dense:
            dense = _as_dense(key)
            if dense is None:
                raise KeyError(key)
            return self._backend.delete(dense)
        return self._backend.delete(key)

    def pop(self, key: float, default: float | None = None) -> float | None:
        if key in self:
            return self.delete(key)
        return default

    def _ensure_capacity(self, dense: int) -> None:
        """Grow the dense universe to cover ``dense`` (callers check the
        capacity inline first — this is off the hot path)."""
        self._backend.grow(dense + 1)
        if _SINK.enabled:
            _SINK.inc("backend.fenwick_grows")

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        if self._dense:
            floor = math.floor(key)
            if floor != key:
                # Non-integral bound: both < and <= reduce to <= floor.
                return self._backend.get_sum(floor, inclusive=True)
            return self._backend.get_sum(int(key), inclusive=inclusive)
        return self._backend.get_sum(key, inclusive=inclusive)

    def total_sum(self) -> float:
        return self._backend.total_sum()

    def suffix_sum(self, key: float, *, inclusive: bool = False) -> float:
        return self.total_sum() - self.get_sum(key, inclusive=not inclusive)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        if self._dense:
            self._migrate("shift_keys")
        self._backend.shift_keys(key, delta, inclusive=inclusive)

    # -- order / search helpers ------------------------------------------------

    def min_key(self) -> float:
        return self._backend.min_key()

    def max_key(self) -> float:
        return self._backend.max_key()

    def successor(self, key: float) -> float | None:
        return self._backend.successor(key)

    def predecessor(self, key: float) -> float | None:
        return self._backend.predecessor(key)

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        return self._backend.first_key_with_prefix_above(threshold)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        return self._backend.items()

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[float]:
        for _, v in self.items():
            yield v

    def clear(self) -> None:
        self._backend.clear()

    def __len__(self) -> int:
        return len(self._backend)

    def __bool__(self) -> bool:
        return len(self._backend) > 0

    def __contains__(self, key: float) -> bool:
        if self._dense:
            dense = _as_dense(key)
            return dense is not None and dense in self._backend
        return key in self._backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"AdaptiveIndex[{self.backend_name}]({{{entries}}})"
