"""The aggregate-index interface shared by PAI maps and RPAI trees.

Section 2 of the paper identifies two operations, beyond ordinary map
``get``/``put``, that an index *keyed by aggregate values* must support
to fully incrementalize correlated nested aggregate queries:

``get_sum(k)``
    Sum of the values of all entries whose key is ``<= k`` (Figure 3).
    Used to evaluate inequality predicates like
    ``lhs_sum < rhs_sum`` directly from the index.

``shift_keys(k, d)``
    Shift every key strictly greater than ``k`` by ``d`` (Algorithm 1/2).
    Used when a base-table update changes a whole *range* of inner
    aggregate values at once — e.g. inserting a bid moves the
    ``rhs_sum`` of every outer bid with a higher price.

The implementations in this package trade these operations off exactly
as the paper's Sections 2–3 narrate (U = dense integer key universe):

=======================  ==========  ==========  ============
implementation           get/put     get_sum     shift_keys
=======================  ==========  ==========  ============
:class:`PAIMap`          O(1)        O(n)        O(n)
:class:`TreeMap`         O(log n)    O(log n)    O(n)
:class:`RPAITree`        O(log n)    O(log n)    O(log n) [*]
:class:`FenwickTree`     O(1) am.    O(log U)    O(U)
:class:`AdaptiveIndex`   delegates   delegates   migrates [†]
=======================  ==========  ==========  ============

[*] positive offsets always; negative offsets are O(log n) in the
aggregate-maintenance special case of Section 3.2.4 and
O(v log n) in general, where ``v`` is the number of BST violations
repaired (worst case ``v = n``, matching the paper's O(n log n) bound).
Fenwick point updates are amortized O(1) because BIT maintenance is
deferred to the next prefix read (lazy pending queue); an interleaved
add/get_sum pattern pays the usual O(log U) per update at drain time.

[†] :class:`~repro.core.adaptive.AdaptiveIndex` starts on the Fenwick
backend for prune-zeros roles and migrates once (O(n) bulk load) to an
RPAI tree on the first non-dense key or ``shift_keys`` call, after
which every operation has the RPAITree cost.

All three implementations additionally expose a ``bulk_load`` class
method that builds an index from key-sorted ``(key, value)`` pairs in
O(n) — the batched counterpart of n repeated ``put`` calls, used by the
engines' warm-start path.  It is not part of the protocol because the
fixed-universe substrates (Fenwick, segment tree) construct differently.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

__all__ = ["AggregateIndex", "Number"]

# Keys and values are numbers.  The engines in this package only ever
# store exact (int / Fraction) keys so that shifted keys land exactly on
# existing ones; floats are permitted for ad-hoc use.
Number = float  # documentation alias: "any real number type"


@runtime_checkable
class AggregateIndex(Protocol):
    """Protocol implemented by PAI maps, TreeMaps and RPAI trees.

    Keys are aggregate values (or plain column values); values are the
    partial aggregates being indexed.  Keys are unique: ``add`` merges
    into an existing entry, ``put`` overwrites.
    """

    def get(self, key: float, default: float = 0.0) -> float:
        """Return the value stored at ``key`` or ``default``."""
        ...

    def put(self, key: float, value: float) -> None:
        """Insert ``key`` or overwrite its current value."""
        ...

    def add(self, key: float, delta: float) -> None:
        """Add ``delta`` to the value at ``key`` (inserting 0 first if
        absent).  This is the hot-path operation of every trigger."""
        ...

    def delete(self, key: float) -> float:
        """Remove ``key`` and return its value.

        Raises:
            KeyError: if ``key`` is not present.
        """
        ...

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        """Sum of values over all entries with key ``<= key``
        (``< key`` when ``inclusive=False``)."""
        ...

    def total_sum(self) -> float:
        """Sum of all values (== ``get_sum(+inf)``), in O(1)."""
        ...

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """Shift every key ``> key`` (``>= key`` when ``inclusive=True``)
        by ``delta``.  Keys that collide after the shift merge by
        addition (the Section 3.2.4 aggregate special case)."""
        ...

    def items(self) -> Iterator[tuple[float, float]]:
        """Iterate ``(key, value)`` pairs in increasing key order."""
        ...

    def __len__(self) -> int:
        ...

    def __contains__(self, key: float) -> bool:
        ...
