"""A slow, obviously-correct aggregate index used as a testing oracle.

:class:`ReferenceIndex` keeps its entries in a sorted list and performs
every operation by brute force.  It exists so that the property-based
tests can run *the same* random operation sequence against an
:class:`~repro.core.rpai.RPAITree` (or :class:`~repro.core.pai_map.PAIMap`)
and this oracle, and require the observable state to match exactly.

Nothing in the hot engine paths uses this class.
"""

from __future__ import annotations

import bisect
from typing import Iterator

__all__ = ["ReferenceIndex"]


class ReferenceIndex:
    """Sorted-list implementation of the AggregateIndex protocol.

    All operations are O(n) or worse; correctness over speed.
    """

    def __init__(self, *, prune_zeros: bool = False) -> None:
        self._keys: list[float] = []
        self._values: list[float] = []
        self.prune_zeros = prune_zeros

    # -- basic map operations -------------------------------------------------

    def get(self, key: float, default: float = 0.0) -> float:
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._values[i]
        return default

    def put(self, key: float, value: float) -> None:
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            self._values[i] = value
        else:
            self._keys.insert(i, key)
            self._values.insert(i, value)
        self._maybe_prune(key)

    def add(self, key: float, delta: float) -> None:
        self.put(key, self.get(key, 0.0) + delta)

    def delete(self, key: float) -> float:
        i = bisect.bisect_left(self._keys, key)
        if i >= len(self._keys) or self._keys[i] != key:
            raise KeyError(key)
        self._keys.pop(i)
        return self._values.pop(i)

    def _maybe_prune(self, key: float) -> None:
        if self.prune_zeros and self.get(key, None) == 0:
            self.delete(key)

    # -- aggregate operations -------------------------------------------------

    def get_sum(self, key: float, *, inclusive: bool = True) -> float:
        if inclusive:
            return sum(v for k, v in zip(self._keys, self._values) if k <= key)
        return sum(v for k, v in zip(self._keys, self._values) if k < key)

    def total_sum(self) -> float:
        return sum(self._values)

    def shift_keys(self, key: float, delta: float, *, inclusive: bool = False) -> None:
        """Shift qualifying keys by ``delta``, merging collisions by +."""
        merged: dict[float, float] = {}
        for k, v in zip(self._keys, self._values):
            qualifies = k >= key if inclusive else k > key
            nk = k + delta if qualifies else k
            merged[nk] = merged.get(nk, 0.0) + v
        self._keys = sorted(merged)
        self._values = [merged[k] for k in self._keys]
        if self.prune_zeros:
            pairs = [(k, v) for k, v in zip(self._keys, self._values) if v != 0]
            self._keys = [k for k, _ in pairs]
            self._values = [v for _, v in pairs]

    # -- order / search helpers ----------------------------------------------

    def min_key(self) -> float:
        if not self._keys:
            raise KeyError("empty index")
        return self._keys[0]

    def max_key(self) -> float:
        if not self._keys:
            raise KeyError("empty index")
        return self._keys[-1]

    def successor(self, key: float) -> float | None:
        """Smallest key strictly greater than ``key`` (None if none)."""
        i = bisect.bisect_right(self._keys, key)
        return self._keys[i] if i < len(self._keys) else None

    def predecessor(self, key: float) -> float | None:
        """Largest key strictly smaller than ``key`` (None if none)."""
        i = bisect.bisect_left(self._keys, key)
        return self._keys[i - 1] if i > 0 else None

    def first_key_with_prefix_above(self, threshold: float) -> float | None:
        """Smallest key ``k`` with ``get_sum(k) > threshold`` (None if the
        total never exceeds it)."""
        running = 0.0
        for k, v in zip(self._keys, self._values):
            running += v
            if running > threshold:
                return k
        return None

    def range_items(
        self,
        lo: float,
        hi: float,
        *,
        lo_inclusive: bool = False,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[float, float]]:
        """Iterate entries with key in the given interval, ascending."""
        for k, v in zip(list(self._keys), list(self._values)):
            above = k >= lo if lo_inclusive else k > lo
            below = k <= hi if hi_inclusive else k < hi
            if above and below:
                yield (k, v)

    # -- iteration / dunder ----------------------------------------------------

    def items(self) -> Iterator[tuple[float, float]]:
        yield from zip(list(self._keys), list(self._values))

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: float) -> bool:
        i = bisect.bisect_left(self._keys, key)
        return i < len(self._keys) and self._keys[i] == key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"ReferenceIndex({{{entries}}})"
