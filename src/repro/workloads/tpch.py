"""Mini TPC-H generator for the Q17/Q18 experiments.

The paper runs Q17/Q18 on TPC-H dbgen data at scale factors 0.1–5
(100 MB–5 GB) and, for the Q17* experiment, on a skew-augmented
version of the generator.  dbgen output at those sizes is not practical
for a pure-Python baseline whose per-update cost is the quantity being
measured, so this module generates the four tables the two queries
touch at proportionally scaled-down row counts:

* ``sf=1`` here means 60 000 lineitems / 2 000 parts (dbgen: 6 M / 200 k)
  — a factor-100 shrink that leaves every curve *shape* intact because
  both engines' costs are functions of row counts and group sizes, not
  of bytes.
* ``skew > 0`` reproduces the paper's skewed generator: lineitem part
  keys are drawn Zipf-like (a few hot parts receive most lineitems) and
  quantities are drawn from a wide domain, so the number of *distinct
  quantity values per part* grows with the trace — exactly the regime
  where DBToaster's domain-extraction index degrades to O(n) while the
  RPAI engine stays logarithmic (Section 5.2.2, Q17*).

Brands/containers follow dbgen's categorical shapes with the filtered
values ("Brand#23", "WRAP BOX") hit by ~10% of parts so the query has
signal at small scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.stream import Event, Stream

__all__ = ["TPCHConfig", "generate_tpch", "Q17_BRAND", "Q17_CONTAINER"]

Q17_BRAND = "Brand#23"
Q17_CONTAINER = "WRAP BOX"

_BRANDS = [f"Brand#{i}" for i in (11, 12, 13, 21, 22, 23, 31, 32, 41, 42)]
_CONTAINERS = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "WRAP CASE",
    "WRAP BOX",
    "JUMBO PKG",
    "JUMBO BOX",
]


@dataclass(frozen=True)
class TPCHConfig:
    """Scaled-down TPC-H knobs.

    Attributes:
        scale_factor: 1.0 ≈ 60k lineitems / 2k parts (see module doc).
        skew: 0 = uniform (dbgen); > 0 = Zipf exponent for lineitem
            part keys plus a wide quantity domain (the paper's skewed
            augmentation; the Q17* columns use skew=1.0).
        quantity_max: quantity domain upper bound for the uniform case
            (dbgen uses 50).
        seed: RNG seed.
    """

    scale_factor: float = 1.0
    skew: float = 0.0
    quantity_max: int = 50
    seed: int = 7

    @property
    def lineitems(self) -> int:
        return max(1, int(60_000 * self.scale_factor))

    @property
    def parts(self) -> int:
        return max(1, int(2_000 * self.scale_factor))

    @property
    def orders(self) -> int:
        return max(1, self.lineitems // 8)

    @property
    def customers(self) -> int:
        return max(1, self.orders // 10)


def _zipf_sampler(n: int, exponent: float, rng: random.Random):
    """Sampler for Zipf-ish ranks 1..n computed by inverse CDF over the
    exact normalized weights (n is small enough here)."""
    weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)

    def sample() -> int:
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    return sample


def generate_tpch(config: TPCHConfig) -> Stream:
    """One stream: parts, customers, orders (reference data) followed by
    the lineitem stream — the incremental dimension of the experiment."""
    rng = random.Random(config.seed)
    events: list[Event] = []

    part_prices: dict[int, int] = {}
    for partkey in range(1, config.parts + 1):
        part_prices[partkey] = rng.randint(100, 2_000)
        # dbgen draws brand and container independently (the Q17 combo
        # hits ~0.25% of parts at full scale, thousands of parts).  At
        # our shrunken scale that leaves the query with no signal, so
        # the filtered combination is drawn *jointly* with 10%
        # probability — same query, proportionally more qualifying
        # parts (documented in DESIGN.md substitutions).
        if rng.random() < 0.10 or (config.skew > 0 and partkey == 1):
            # Under skew, partkey 1 is the Zipf-hottest part; giving it
            # the filtered combination puts the hot lineitem traffic
            # where Q17 looks — the regime Q17* measures (the paper's
            # "augmented" generator, Section 5.2.2).
            brand, container = Q17_BRAND, Q17_CONTAINER
        else:
            brand = rng.choice(_BRANDS)
            container = rng.choice(_CONTAINERS)
            if brand == Q17_BRAND and container == Q17_CONTAINER:
                container = _CONTAINERS[0]
        events.append(
            Event(
                "part",
                {"partkey": partkey, "brand": brand, "container": container},
                +1,
            )
        )

    for custkey in range(1, config.customers + 1):
        events.append(Event("customer", {"custkey": custkey, "name": f"cust{custkey}"}, +1))

    for orderkey in range(1, config.orders + 1):
        events.append(
            Event(
                "orders",
                {
                    "orderkey": orderkey,
                    "custkey": rng.randint(1, config.customers),
                    "orderdate": rng.randint(1, 2_500),
                    "totalprice": 0,
                },
                +1,
            )
        )

    if config.skew > 0:
        draw_part = _zipf_sampler(config.parts, config.skew, rng)
        quantity_max = max(config.quantity_max, config.lineitems)
    else:
        draw_part = lambda: rng.randint(1, config.parts)  # noqa: E731
        quantity_max = config.quantity_max

    for _ in range(config.lineitems):
        partkey = draw_part()
        quantity = rng.randint(1, quantity_max)
        events.append(
            Event(
                "lineitem",
                {
                    "orderkey": rng.randint(1, config.orders),
                    "partkey": partkey,
                    "quantity": quantity,
                    "extendedprice": quantity * part_prices[partkey],
                },
                +1,
            )
        )
    return Stream(events)
