"""Synthetic financial order-book stream generator.

The paper evaluates on a historical order-book trace (from the
DBToaster finance benchmark [24, 25]) that is not publicly
redistributable.  This module generates a synthetic equivalent: two
interleaved streams of *bids* and *asks* records with integer prices
and volumes, optional retractions (deletions) of earlier records, and
knobs for the distributional properties that drive the asymptotic
separations the paper measures:

* ``price_levels`` — number of distinct prices.  DBToaster's final
  result loop iterates over distinct prices, so this controls the
  baseline's per-update cost exactly as trace size does in the paper.
* ``delete_ratio`` — retraction frequency (the paper's update model
  includes deletions; they exercise RPAI's negative key shifts).
* random-walk prices — consecutive trades cluster around the current
  market price, like a real book.

Integer prices/volumes keep every engine's arithmetic exact, so the
differential tests can require bit-identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.stream import Event, Stream, interleave

__all__ = ["OrderBookConfig", "generate_order_book", "generate_bids_only", "generate_side"]


@dataclass(frozen=True)
class OrderBookConfig:
    """Knobs for the synthetic order book.

    Attributes:
        events: total number of events across both sides (bids + asks),
            including deletions.
        price_levels: number of distinct integer price levels.
        volume_max: volumes are uniform in [1, volume_max].
        brokers: number of distinct broker ids.
        delete_ratio: expected deletions per insertion (0 = append-only).
        seed: RNG seed; streams are fully reproducible.
        walk_step: maximum per-trade movement of the market price, as a
            fraction of ``price_levels``.
    """

    events: int = 10_000
    price_levels: int = 1_000
    volume_max: int = 100
    brokers: int = 10
    delete_ratio: float = 0.1
    seed: int = 42
    walk_step: float = 0.02

    def __post_init__(self) -> None:
        if self.events <= 0 or self.price_levels <= 0 or self.volume_max <= 0:
            raise ValueError("events, price_levels and volume_max must be positive")
        if not 0 <= self.delete_ratio < 1:
            raise ValueError("delete_ratio must be in [0, 1)")


def generate_side(
    relation: str, count: int, config: OrderBookConfig, rng: random.Random
) -> list[Event]:
    """Generate ``count`` events (inserts + woven deletions) for one
    side of the book."""
    events: list[Event] = []
    live: list[dict] = []
    price = config.price_levels // 2
    step = max(1, int(config.price_levels * config.walk_step))
    next_id = 1
    timestamp = 0
    period = (
        max(2, round(1.0 / config.delete_ratio)) if config.delete_ratio > 0 else 0
    )
    while len(events) < count:
        timestamp += 1
        price = min(config.price_levels, max(1, price + rng.randint(-step, step)))
        row = {
            "timestamp": timestamp,
            "id": next_id,
            "broker_id": rng.randint(1, config.brokers),
            "volume": rng.randint(1, config.volume_max),
            "price": price,
        }
        next_id += 1
        events.append(Event(relation, row, +1))
        live.append(row)
        if period and len(events) % period == 0 and live and len(events) < count:
            victim = live.pop(rng.randrange(len(live)))
            events.append(Event(relation, victim, -1))
    return events[:count]


def generate_order_book(config: OrderBookConfig) -> Stream:
    """Interleaved bids/asks stream with ``config.events`` total events."""
    rng = random.Random(config.seed)
    per_side = config.events // 2
    bids = generate_side("bids", per_side, config, rng)
    asks = generate_side("asks", config.events - per_side, config, rng)
    return interleave(bids, asks)


def generate_bids_only(config: OrderBookConfig) -> Stream:
    """Bids-only stream (VWAP and the synthetic SQ/NQ queries read a
    single relation)."""
    rng = random.Random(config.seed)
    return Stream(generate_side("bids", config.events, config, rng))
