"""The benchmark query suite (paper Section 5.1.1, Table 1).

Full SQL is given in the paper for Example 2.1 (here ``EQ``), VWAP and
TPC-H Q17; MST and PSP are the DBToaster finance-benchmark queries the
paper references; SQ1/SQ2/NQ1/NQ2 are the paper's synthetic variants,
described in prose in Section 5.2.1 and pinned down in DESIGN.md §4.

Every query is provided as SQL text (parsed on first access) together
with the schemas of the relations it touches, so tests, examples and
benchmarks all share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.query.ast import AggrQuery
from repro.query.parser import parse_query
from repro.storage import schema as schemas
from repro.storage.schema import Schema

__all__ = ["QueryDef", "QUERIES", "query_names", "get_query"]


@dataclass(frozen=True)
class QueryDef:
    """A named benchmark query: SQL text + the schemas it needs."""

    name: str
    sql: str
    schemas: tuple[Schema, ...]
    description: str

    @cached_property
    def ast(self) -> AggrQuery:
        return parse_query(self.sql)

    def schema_map(self) -> dict[str, Schema]:
        return {s.name: s for s in self.schemas}


EQ = QueryDef(
    name="EQ",
    description=(
        "Example 2.1: nested aggregate with equality correlation — "
        "the PAI-map O(1) showcase"
    ),
    sql="""
        SELECT SUM(r.A * r.B) FROM R r
        WHERE 0.5 * (SELECT SUM(r1.B) FROM R r1)
            = (SELECT SUM(r2.B) FROM R r2 WHERE r2.A = r.A)
    """,
    schemas=(schemas.R_AB,),
)

VWAP = QueryDef(
    name="VWAP",
    description=(
        "Example 2.2: volume-weighted average price over the final "
        "quartile of stock volume — inequality correlation, RPAI O(log n)"
    ),
    sql="""
        SELECT SUM(b.price * b.volume) FROM bids b
        WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
            < (SELECT SUM(b2.volume) FROM bids b2
               WHERE b2.price <= b.price)
    """,
    schemas=(schemas.BIDS,),
)

MST = QueryDef(
    name="MST",
    description=(
        "Missed trades: cross join of asks and bids, four nested "
        "aggregates of which two are correlated (Section 5.2.1)"
    ),
    sql="""
        SELECT SUM(a.price - b.price) FROM asks a, bids b
        WHERE 0.25 * (SELECT SUM(a1.volume) FROM asks a1)
                > (SELECT SUM(a2.volume) FROM asks a2 WHERE a2.price > a.price)
          AND 0.25 * (SELECT SUM(b1.volume) FROM bids b1)
                > (SELECT SUM(b2.volume) FROM bids b2 WHERE b2.price > b.price)
    """,
    schemas=(schemas.BIDS, schemas.ASKS),
)

PSP = QueryDef(
    name="PSP",
    description=(
        "Price spread: cross join with column-vs-moving-threshold "
        "predicates (uncorrelated nested aggregates)"
    ),
    sql="""
        SELECT SUM(a.price - b.price) FROM bids b, asks a
        WHERE b.volume > 0.0001 * (SELECT SUM(b1.volume) FROM bids b1)
          AND a.volume > 0.0001 * (SELECT SUM(a1.volume) FROM asks a1)
    """,
    schemas=(schemas.BIDS, schemas.ASKS),
)

SQ1 = QueryDef(
    name="SQ1",
    description=(
        "VWAP with the uncorrelated side made correlated: both predicate "
        "sides vary per outer tuple, so only the general algorithm applies"
    ),
    sql="""
        SELECT SUM(b.price * b.volume) FROM bids b
        WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1
                      WHERE b1.price >= b.price)
            < (SELECT SUM(b2.volume) FROM bids b2
               WHERE b2.price <= b.price)
    """,
    schemas=(schemas.BIDS,),
)

SQ2 = QueryDef(
    name="SQ2",
    description=(
        "VWAP with an asymmetric inner inequality (b2.price + b2.volume "
        "<= b.price): rejected by the aggregate-index pattern matcher"
    ),
    sql="""
        SELECT SUM(b.price * b.volume) FROM bids b
        WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
            < (SELECT SUM(b2.volume) FROM bids b2
               WHERE b2.price + b2.volume <= b.price)
    """,
    schemas=(schemas.BIDS,),
)

NQ1 = QueryDef(
    name="NQ1",
    description=(
        "VWAP whose correlated subquery is itself a 2-level nested "
        "aggregate; the inner eligibility view is delta-maintained "
        "independently of the outer query"
    ),
    sql="""
        SELECT SUM(b.price * b.volume) FROM bids b
        WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
            < (SELECT SUM(b2.volume) FROM bids b2
               WHERE b2.price <= b.price
                 AND 0.25 * (SELECT SUM(b3.volume) FROM bids b3)
                     < (SELECT SUM(b4.volume) FROM bids b4
                        WHERE b4.price <= b2.price))
    """,
    schemas=(schemas.BIDS,),
)

NQ2 = QueryDef(
    name="NQ2",
    description=(
        "Like NQ1 but the lowest nesting level correlates with the "
        "outermost query, forcing the general algorithm at the outer level"
    ),
    sql="""
        SELECT SUM(b.price * b.volume) FROM bids b
        WHERE 0.75 * (SELECT SUM(b1.volume) FROM bids b1)
            < (SELECT SUM(b2.volume) FROM bids b2
               WHERE 0.25 * (SELECT SUM(b4.volume) FROM bids b4
                             WHERE b4.price <= b.price)
                     < (SELECT SUM(b3.volume) FROM bids b3
                        WHERE b3.price <= b2.price))
    """,
    schemas=(schemas.BIDS,),
)

Q17 = QueryDef(
    name="Q17",
    description=(
        "TPC-H Q17: small-quantity-order revenue; single correlated "
        "nested aggregate with equality correlation on partkey"
    ),
    sql="""
        SELECT SUM(l.extendedprice) / 7.0 FROM lineitem l, part p
        WHERE p.partkey = l.partkey
          AND p.brand = 'Brand#23'
          AND p.container = 'WRAP BOX'
          AND l.quantity < (SELECT 0.2 * AVG(l2.quantity) FROM lineitem l2
                            WHERE l2.partkey = p.partkey)
    """,
    schemas=(schemas.LINEITEM, schemas.PART),
)

Q18 = QueryDef(
    name="Q18",
    description=(
        "TPC-H Q18: large-volume customers; uncorrelated nested aggregate "
        "(both systems fully incrementalize it — parity check)"
    ),
    sql="""
        SELECT c.custkey, SUM(l.quantity)
        FROM customer c, orders o, lineitem l
        WHERE o.orderkey IN (SELECT l2.orderkey FROM lineitem l2
                             GROUP BY l2.orderkey
                             HAVING SUM(l2.quantity) > 300)
          AND c.custkey = o.custkey
          AND o.orderkey = l.orderkey
        GROUP BY c.custkey
    """,
    schemas=(schemas.CUSTOMER, schemas.ORDERS, schemas.LINEITEM),
)


QUERIES: dict[str, QueryDef] = {
    q.name: q for q in (EQ, VWAP, MST, PSP, SQ1, SQ2, NQ1, NQ2, Q17, Q18)
}


def query_names() -> list[str]:
    return list(QUERIES)


def get_query(name: str) -> QueryDef:
    """Look up a benchmark query by (case-insensitive) name."""
    try:
        return QUERIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; available: {', '.join(QUERIES)}"
        ) from None
