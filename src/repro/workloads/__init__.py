"""Workloads: data generators and the benchmark query suite."""

from repro.workloads.orderbook import (
    OrderBookConfig,
    generate_bids_only,
    generate_order_book,
)
from repro.workloads.queries import QUERIES, QueryDef, get_query, query_names
from repro.workloads.tpch import Q17_BRAND, Q17_CONTAINER, TPCHConfig, generate_tpch

__all__ = [
    "OrderBookConfig",
    "generate_order_book",
    "generate_bids_only",
    "TPCHConfig",
    "generate_tpch",
    "Q17_BRAND",
    "Q17_CONTAINER",
    "QUERIES",
    "QueryDef",
    "get_query",
    "query_names",
]
