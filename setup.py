"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel
package available), while project metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
